//! eta-lint CLI.
//!
//! ```text
//! cargo run -p eta-lint                      # text diagnostics, exit 1 on findings
//! cargo run -p eta-lint -- --format json     # JSON report on stdout
//! cargo run -p eta-lint -- --format sarif    # SARIF 2.1.0 log (CI code scanning)
//! cargo run -p eta-lint -- --output lint.sarif --format sarif
//! cargo run -p eta-lint -- --root /path/to/workspace
//! ```
//!
//! Exit codes: 0 clean, 1 unallowlisted findings, 2 configuration or
//! I/O error (bad lint.toml, unreadable files, unknown flags).

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    format: Format,
    output: Option<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Text,
        output: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a path")?;
                args.root = Some(PathBuf::from(v));
            }
            "--format" => match it.next().as_deref() {
                Some("text") => args.format = Format::Text,
                Some("json") => args.format = Format::Json,
                Some("sarif") => args.format = Format::Sarif,
                other => return Err(format!("--format expects text|json|sarif, got {other:?}")),
            },
            "--output" => {
                let v = it.next().ok_or("--output requires a path")?;
                args.output = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "eta-lint — workspace static analysis for the eta-LSTM contracts\n\n\
                     USAGE: eta-lint [--root DIR] [--format text|json|sarif] [--output FILE]\n\n\
                     Token rules: D1 hash-ordered collections in numeric crates; D2 entropy\n\
                     sources outside telemetry+bench+prof; A1 unsafe needs // SAFETY:;\n\
                     T1 telemetry keys from eta_telemetry::keys.\n\
                     Semantic rules (AST + call graph): S1 panic-capable sites reachable\n\
                     from public numeric APIs (diagnostic shows the call chain); S2 clock/\n\
                     entropy/hash-order taint reaching numerics or telemetry; S3 registered\n\
                     telemetry keys never emitted (warning only).\n\
                     Dataflow rules (CFG + worklist): H1 allocations reachable on the\n\
                     per-timestep hot path; A2 std::arch intrinsic hygiene (target_feature,\n\
                     runtime detect + scalar fallback, // SAFETY:); DS1 dead stores to\n\
                     local numeric state; R1 stray .proptest-regressions seed files.\n\
                     Concurrency rules (escape/alias + slice-region prover): C1 data-race\n\
                     freedom of scoped spawns; C2 deterministic merge order (retired D3's\n\
                     unordered reductions, plus channels and atomic float accumulation);\n\
                     C3 locks/atomics in numeric crates need a // SYNC: justification.\n\
                     Exceptions: lint.toml at the workspace root (rule/file/[line]/reason)."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("eta-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| eta_lint::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("eta-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = match eta_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("eta-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let rendered = match args.format {
        Format::Text => report.render_text(),
        Format::Json => match serde_json::to_string_pretty(&report) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("eta-lint: serializing report: {e}");
                return ExitCode::from(2);
            }
        },
        Format::Sarif => eta_lint::sarif::render(&report),
    };

    if let Some(path) = &args.output {
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("eta-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        if args.format == Format::Text {
            // Still summarize to stderr so CI logs show the verdict.
            eprintln!(
                "eta-lint: {} finding(s) written to {}",
                report.findings.len(),
                path.display()
            );
        }
    } else {
        print!("{rendered}");
        if args.format != Format::Text {
            println!();
        }
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
