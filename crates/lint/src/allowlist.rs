//! `lint.toml` — the allowlist for justified rule exceptions.
//!
//! The workspace has no TOML crate (offline build), so this module
//! parses exactly the subset the allowlist uses: `[[allow]]` array
//! tables with `key = "string"` / `key = integer` pairs and `#`
//! comments. Every entry must name a rule, an existing file, and a
//! non-empty justification; entries may pin a specific line. An entry
//! without `line` covers every finding of that rule in that file —
//! the per-file form is the norm for S1 audits of kernel files, where
//! the justification describes the file's bounds discipline.

use std::path::Path;

#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct AllowEntry {
    pub rule: String,
    pub file: String,
    /// 1-indexed line this entry is pinned to; `None` covers the file.
    pub line: Option<u32>,
    pub reason: String,
    /// Line in lint.toml where the entry starts (for diagnostics).
    pub defined_at: u32,
}

const KNOWN_RULES: &[&str] = &[
    "D1", "D2", "A1", "T1", "S1", "S2", "S3", "H1", "A2", "DS1", "R1", "C1", "C2", "C3",
];

/// Parses allowlist text. `root` anchors the existence check for
/// `file` fields; a missing file is a hard error so stale entries
/// cannot silently rot (and so typoed paths fail loudly).
pub fn parse(text: &str, root: &Path) -> Result<Vec<AllowEntry>, String> {
    struct Partial {
        rule: Option<String>,
        file: Option<String>,
        line: Option<u32>,
        reason: Option<String>,
        defined_at: u32,
    }

    let mut entries = Vec::new();
    let mut current: Option<Partial> = None;

    let finish = |p: Partial, entries: &mut Vec<AllowEntry>| -> Result<(), String> {
        let at = p.defined_at;
        let rule = p
            .rule
            .ok_or_else(|| format!("lint.toml:{at}: entry is missing `rule`"))?;
        let file = p
            .file
            .ok_or_else(|| format!("lint.toml:{at}: entry is missing `file`"))?;
        let reason = p
            .reason
            .ok_or_else(|| format!("lint.toml:{at}: entry is missing `reason`"))?;
        if !KNOWN_RULES.contains(&rule.as_str()) {
            return Err(format!(
                "lint.toml:{at}: unknown rule `{rule}` (expected one of {KNOWN_RULES:?})"
            ));
        }
        if reason.trim().is_empty() {
            return Err(format!(
                "lint.toml:{at}: `reason` must be a non-empty justification"
            ));
        }
        if !root.join(&file).is_file() {
            return Err(format!(
                "lint.toml:{at}: allowlisted file `{file}` does not exist under the \
                 workspace root — remove the stale entry or fix the path"
            ));
        }
        entries.push(AllowEntry {
            rule,
            file,
            line: p.line,
            reason,
            defined_at: at,
        });
        Ok(())
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = current.take() {
                finish(p, &mut entries)?;
            }
            current = Some(Partial {
                rule: None,
                file: None,
                line: None,
                reason: None,
                defined_at: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "lint.toml:{lineno}: expected `key = value` or `[[allow]]`, got `{line}`"
            ));
        };
        let Some(p) = current.as_mut() else {
            return Err(format!(
                "lint.toml:{lineno}: `{}` outside an [[allow]] entry",
                key.trim()
            ));
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "rule" => p.rule = Some(parse_string(value, lineno)?),
            "file" => p.file = Some(parse_string(value, lineno)?),
            "reason" => p.reason = Some(parse_string(value, lineno)?),
            "line" => {
                p.line = Some(value.parse::<u32>().map_err(|_| {
                    format!("lint.toml:{lineno}: `line` must be an integer, got `{value}`")
                })?)
            }
            other => {
                return Err(format!(
                    "lint.toml:{lineno}: unknown key `{other}` (expected rule/file/line/reason)"
                ))
            }
        }
    }
    if let Some(p) = current.take() {
        finish(p, &mut entries)?;
    }
    Ok(entries)
}

/// Drops a trailing `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '\\' if in_str => {
                escaped = !escaped;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return line.get(..i).unwrap_or(line),
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_string(value: &str, lineno: u32) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("lint.toml:{lineno}: expected a quoted string, got `{value}`"))?;
    Ok(inner.replace("\\\"", "\""))
}

impl AllowEntry {
    pub fn matches(&self, finding: &crate::rules::Finding) -> bool {
        self.rule == finding.rule
            && self.file == finding.file
            && self.line.is_none_or(|l| l == finding.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> std::path::PathBuf {
        // crates/lint -> workspace root, which certainly has Cargo.toml.
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
            .to_path_buf()
    }

    #[test]
    fn parses_entries_with_comments_and_optional_line() {
        let text = r##"
# header comment
[[allow]]
rule = "S1"                       # trailing comment
file = "crates/lint/src/lib.rs"
reason = "audit: # in strings ok"
[[allow]]
rule = "D2"
file = "crates/lint/src/lexer.rs"
line = 42
reason = "pinned"
"##;
        let entries = parse(text, &root()).expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "S1");
        assert_eq!(entries[0].line, None);
        assert_eq!(entries[0].reason, "audit: # in strings ok");
        assert_eq!(entries[1].line, Some(42));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let text = "[[allow]]\nrule = \"S1\"\nfile = \"crates/lint/src/lib.rs\"\n";
        let err = parse(text, &root()).expect_err("must fail");
        assert!(err.contains("missing `reason`"), "{err}");
    }

    #[test]
    fn nonexistent_file_is_an_error() {
        let text = "[[allow]]\nrule = \"S1\"\nfile = \"crates/nope/src/lib.rs\"\nreason = \"x\"\n";
        let err = parse(text, &root()).expect_err("must fail");
        assert!(err.contains("does not exist"), "{err}");
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let text = "[[allow]]\nrule = \"Z9\"\nfile = \"crates/lint/src/lib.rs\"\nreason = \"x\"\n";
        let err = parse(text, &root()).expect_err("must fail");
        assert!(err.contains("unknown rule"), "{err}");
    }
}
