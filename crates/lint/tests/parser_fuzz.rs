//! No-panic fuzzing of the tolerant parser.
//!
//! Two generators feed [`eta_lint::parser`]:
//!
//! 1. **Token soup** — arbitrary sequences drawn from a weighted
//!    alphabet of identifiers, keywords, literals, and punctuation,
//!    fed through [`parse_tokens`]. The parser must terminate without
//!    panicking on *any* input (errors are expected and fine).
//! 2. **Character soup** — random bytes from a Rust-flavored
//!    character set, fed through the lexer + parser pipeline, which
//!    additionally exercises literal/comment termination handling.
//!
//! The shim proptest is deterministic (fixed seed, no shrinking), so
//! failures reproduce exactly in CI.

use eta_lint::lexer::{Tok, TokKind};
use eta_lint::parser::{parse, parse_tokens};
use proptest::prelude::*;

/// Weighted token alphabet: heavy on the punctuation that drives the
/// parser's trickiest paths (angle brackets, dots, pipes, braces).
const WORDS: &[&str] = &[
    "fn",
    "let",
    "if",
    "else",
    "match",
    "while",
    "for",
    "loop",
    "in",
    "impl",
    "trait",
    "struct",
    "enum",
    "mod",
    "pub",
    "use",
    "const",
    "static",
    "unsafe",
    "move",
    "mut",
    "return",
    "break",
    "continue",
    "as",
    "where",
    "self",
    "Self",
    "true",
    "false",
    "x",
    "y",
    "foo",
    "Bar",
    "vec",
    "macro_rules",
    "extern",
    "crate",
    "type",
    "ref",
];
const PUNCTS: &[char] = &[
    '{', '}', '(', ')', '[', ']', '<', '>', ';', ',', '.', ':', '=', '+', '-', '*', '/', '%', '&',
    '|', '^', '!', '?', '#', '@', '$', '~', '\'',
];

fn tok(kind: TokKind, text: impl Into<String>) -> Tok {
    Tok {
        kind,
        text: text.into(),
        line: 1,
    }
}

fn token_from_choice(word: usize, punct: usize, kind: u8) -> Tok {
    match kind % 5 {
        0 => tok(TokKind::Ident, WORDS[word % WORDS.len()]),
        1 => tok(TokKind::Punct, PUNCTS[punct % PUNCTS.len()].to_string()),
        2 => tok(
            TokKind::Num,
            ["0", "1", "2.5", "0.1", "1e-3", "42"][word % 6],
        ),
        3 => tok(TokKind::Str, "s"),
        _ => tok(TokKind::Lifetime, "'a"),
    }
}

/// Characters for source-level fuzzing: enough structure that the
/// lexer regularly produces interesting token streams.
const CHARS: &[u8] = b"fnletifmatch{}()[]<>;,.:=+-*/%&|^!?#'\"r\\ \n0123456789abcXYZ_";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_token_soup(
        choices in proptest::collection::vec((0usize..64, 0usize..32, 0u8..5), 0..120)
    ) {
        let toks: Vec<Tok> = choices
            .into_iter()
            .map(|(w, p, k)| token_from_choice(w, p, k))
            .collect();
        let file = parse_tokens(&toks);
        // Error volume is bounded regardless of input size.
        prop_assert!(file.errors.len() <= 64);
    }

    #[test]
    fn parser_never_panics_on_char_soup(
        bytes in proptest::collection::vec(0usize..CHARS.len(), 0..200)
    ) {
        let src: String = bytes.into_iter().map(|i| CHARS[i] as char).collect();
        let _ = parse(&src);
    }

    #[test]
    fn deep_nesting_bails_instead_of_overflowing(
        depth in 1usize..2000,
        opener in 0usize..4
    ) {
        let (open, close) = [("(", ")"), ("[", "]"), ("{", "}"), ("f!(", ")")][opener];
        let src = format!(
            "fn f() {{ let x = {}1{}; }}",
            open.repeat(depth),
            close.repeat(depth)
        );
        let _ = parse(&src);
    }
}
