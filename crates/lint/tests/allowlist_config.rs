//! Allowlist configuration handling against the real workspace: stale
//! entries (nonexistent files, unknown rules, missing reasons) must be
//! hard errors, and entries that match nothing must be reported so
//! they get deleted.

use eta_lint::{find_workspace_root, lint_workspace_with};
use std::path::Path;

fn root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace")
}

#[test]
fn entry_for_nonexistent_file_is_a_config_error() {
    let toml = "[[allow]]\n\
                rule = \"S1\"\n\
                file = \"crates/core/src/no_such_file.rs\"\n\
                reason = \"stale entry left behind after a refactor\"\n";
    let err = lint_workspace_with(&root(), toml).expect_err("must reject");
    let msg = err.to_string();
    assert!(
        msg.contains("no_such_file.rs") && msg.contains("does not exist"),
        "error must name the missing file: {msg}"
    );
}

#[test]
fn entry_with_unknown_rule_is_a_config_error() {
    let toml = "[[allow]]\n\
                rule = \"Z9\"\n\
                file = \"crates/core/src/trainer.rs\"\n\
                reason = \"typo\"\n";
    let err = lint_workspace_with(&root(), toml).expect_err("must reject");
    assert!(err.to_string().contains("Z9"), "{err}");
}

#[test]
fn entry_without_reason_is_a_config_error() {
    let toml = "[[allow]]\n\
                rule = \"S1\"\n\
                file = \"crates/core/src/trainer.rs\"\n";
    let err = lint_workspace_with(&root(), toml).expect_err("must reject");
    assert!(err.to_string().contains("reason"), "{err}");
}

#[test]
fn unmatched_entry_is_reported_not_silently_ignored() {
    // A real file that is lint-clean for D1, so the entry matches
    // nothing; pair it with the real allowlist so the scan itself is
    // otherwise clean.
    let real = std::fs::read_to_string(root().join("lint.toml")).expect("workspace lint.toml");
    let toml = format!(
        "{real}\n[[allow]]\n\
         rule = \"D1\"\n\
         file = \"crates/core/src/trainer.rs\"\n\
         reason = \"never needed\"\n"
    );
    let report = lint_workspace_with(&root(), &toml).expect("config parses");
    assert!(
        report
            .unused_allowlist
            .iter()
            .any(|e| e.rule == "D1" && e.file == "crates/core/src/trainer.rs"),
        "unused entry must surface in the report: {:#?}",
        report.unused_allowlist
    );
}
