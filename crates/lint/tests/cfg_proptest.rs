//! CFG-construction property test.
//!
//! A decision tape (a vector of small integers) is rendered into a
//! structurally valid Rust function exercising every construct the
//! [`Cfg`](eta_lint::semantic::cfg::Cfg) builder splits on — `if`
//! with and without `else`, the three loop forms, `match`, `break`,
//! `continue`, `return`, nested blocks — then parsed, and every AST
//! function must produce a CFG satisfying:
//!
//! 1. construction never panics;
//! 2. edges are balanced — `s ∈ succs[b]` iff `b ∈ preds[s]`, with no
//!    duplicates and no dangling block indices, and the exit block
//!    has no successors;
//! 3. the graph is connected in the only sense lowering guarantees:
//!    every block carrying events or successors is reachable from the
//!    entry. (Join blocks whose every predecessor diverges, and the
//!    after-block of a break-less `loop`, are legitimately orphaned —
//!    but they must then be completely empty.)
//!
//! The tape-to-source renderer is deterministic, so any failure is a
//! plain reproducible unit test: print the tape, re-render, debug.

use eta_lint::ast::ItemKind;
use eta_lint::parser::parse;
use eta_lint::semantic::cfg::Cfg;
use proptest::prelude::*;

/// Deterministic tape reader: out-of-tape reads yield 0, so every
/// tape prefix renders a finite program.
struct Tape<'a> {
    vals: &'a [u8],
    pos: usize,
}

impl Tape<'_> {
    fn next(&mut self) -> u8 {
        let v = self.vals.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        v
    }
}

const MAX_DEPTH: usize = 3;

fn render_block(tape: &mut Tape<'_>, depth: usize, in_loop: bool, out: &mut String, indent: usize) {
    let n = usize::from(tape.next() % 3);
    for _ in 0..n {
        render_stmt(tape, depth, in_loop, out, indent);
    }
}

fn render_stmt(tape: &mut Tape<'_>, depth: usize, in_loop: bool, out: &mut String, indent: usize) {
    let pad = "    ".repeat(indent);
    let op = if depth >= MAX_DEPTH {
        tape.next() % 2
    } else {
        tape.next() % 9
    };
    match op {
        0 => out.push_str(&format!("{pad}x = x + 1;\n")),
        1 => out.push_str(&format!("{pad}let v{indent} = x * 2;\n")),
        2 => {
            out.push_str(&format!("{pad}if x < 3 {{\n"));
            render_block(tape, depth + 1, in_loop, out, indent + 1);
            out.push_str(&format!("{pad}}} else {{\n"));
            render_block(tape, depth + 1, in_loop, out, indent + 1);
            out.push_str(&format!("{pad}}}\n"));
        }
        3 => {
            out.push_str(&format!("{pad}if x > 5 {{\n"));
            render_block(tape, depth + 1, in_loop, out, indent + 1);
            out.push_str(&format!("{pad}}}\n"));
        }
        4 => {
            out.push_str(&format!("{pad}while x < 10 {{\n"));
            render_block(tape, depth + 1, true, out, indent + 1);
            out.push_str(&format!("{pad}}}\n"));
        }
        5 => {
            out.push_str(&format!("{pad}for i{indent} in 0..x {{\n"));
            render_block(tape, depth + 1, true, out, indent + 1);
            out.push_str(&format!("{pad}}}\n"));
        }
        6 => {
            // Half the loops break, half are infinite — the latter
            // exercise the orphaned after-block path.
            let breaks = tape.next().is_multiple_of(2);
            out.push_str(&format!("{pad}loop {{\n"));
            render_block(tape, depth + 1, true, out, indent + 1);
            if breaks {
                out.push_str(&format!("{pad}    break;\n"));
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        7 => {
            out.push_str(&format!("{pad}match x {{\n"));
            out.push_str(&format!("{pad}    0 => {{\n"));
            render_block(tape, depth + 1, in_loop, out, indent + 2);
            out.push_str(&format!("{pad}    }}\n"));
            out.push_str(&format!("{pad}    _ => {{\n"));
            render_block(tape, depth + 1, in_loop, out, indent + 2);
            out.push_str(&format!("{pad}    }}\n"));
            out.push_str(&format!("{pad}}}\n"));
        }
        _ => {
            // Divergence: jumps inside loops, early return outside.
            // Statements after these lower as dead code — the builder
            // must drop them without panicking or dangling edges.
            if in_loop {
                if tape.next().is_multiple_of(2) {
                    out.push_str(&format!("{pad}break;\n"));
                } else {
                    out.push_str(&format!("{pad}continue;\n"));
                }
            } else {
                out.push_str(&format!("{pad}return x;\n"));
            }
        }
    }
}

fn render_fn(vals: &[u8]) -> String {
    let mut tape = Tape { vals, pos: 0 };
    let mut out = String::from("fn gen(mut x: usize) -> usize {\n");
    // Top-level blocks get a wider statement budget than nested ones
    // so tapes regularly produce sequential control-flow chains.
    let n = usize::from(tape.next() % 5);
    for _ in 0..n {
        render_stmt(&mut tape, 0, false, &mut out, 1);
    }
    out.push_str("    x\n}\n");
    out
}

/// Checks invariants 2 and 3 for one function body's CFG.
fn check_cfg(cfg: &Cfg<'_>, src: &str) -> Result<(), String> {
    let n = cfg.blocks.len();
    if cfg.entry != 0 || cfg.exit != 1 || n < 2 {
        return Err(format!("bad entry/exit layout in:\n{src}"));
    }
    if !cfg.blocks[cfg.exit].succs.is_empty() {
        return Err(format!("exit block has successors in:\n{src}"));
    }
    for (b, block) in cfg.blocks.iter().enumerate() {
        for list in [&block.succs, &block.preds] {
            for &t in list {
                if t >= n {
                    return Err(format!("dangling block index {t} in:\n{src}"));
                }
            }
            let mut sorted = list.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != list.len() {
                return Err(format!("duplicate edge at block {b} in:\n{src}"));
            }
        }
        for &s in &block.succs {
            if !cfg.blocks[s].preds.contains(&b) {
                return Err(format!("unbalanced edge {b}->{s} in:\n{src}"));
            }
        }
        for &p in &block.preds {
            if !cfg.blocks[p].succs.contains(&b) {
                return Err(format!("unbalanced pred edge {p}->{b} in:\n{src}"));
            }
        }
    }
    let reach = cfg.reachable();
    for (b, block) in cfg.blocks.iter().enumerate() {
        if !reach[b] && (!block.events.is_empty() || !block.succs.is_empty()) {
            return Err(format!(
                "unreachable block {b} carries events/successors in:\n{src}"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_generated_fn_builds_a_connected_balanced_cfg(
        vals in proptest::collection::vec(0u8..=255u8, 0..48)
    ) {
        let src = render_fn(&vals);
        let file = parse(&src);
        prop_assert!(file.errors.is_empty(), "renderer must emit parseable source:\n{}", src);
        let mut fns = 0;
        for item in &file.items {
            if let ItemKind::Fn(def) = &item.kind {
                fns += 1;
                let body = def.body.as_ref().expect("generated fn has a body");
                let cfg = Cfg::build(body);
                if let Err(msg) = check_cfg(&cfg, &src) {
                    prop_assert!(false, "tape {:?}: {}", vals, msg);
                }
            }
        }
        prop_assert_eq!(fns, 1);
    }
}

/// The renderer itself is deterministic — the property test's failure
/// messages (which print the tape) are honest repro instructions.
#[test]
fn renderer_is_deterministic() {
    let tape = [4, 2, 6, 1, 8, 0, 3, 1, 7, 2, 2, 1, 1, 5, 1, 8, 1];
    assert_eq!(render_fn(&tape), render_fn(&tape));
}
