//! Property tests for the layer-4 slice-region disjointness prover.
//!
//! Two obligations, checked against randomly generated region pairs:
//!
//! * **Soundness** (the one that matters for C1): a pair of concrete
//!   spans that actually intersect must NEVER be claimed disjoint —
//!   a false "disjoint" verdict would let a real data race through
//!   the race-freedom gate.
//! * **Completeness on concrete inputs**: truly disjoint concrete
//!   pairs must be proven disjoint. The prover is allowed to give up
//!   on hard symbolic inputs (it then reports a finding, the safe
//!   direction), but constants leave it no excuse.
//!
//! A third property pins the symbolic workhorse: for random concrete
//! chunk widths `w >= 1`, the `chunks_mut` window `[c·w, (c+1)·w)` is
//! self-disjoint across iterations, while a window widened by one
//! element is not.

use eta_lint::semantic::disjoint::{chunk_window, span_self_disjoint, spans_disjoint, Span};
use eta_lint::semantic::linear::{Env, Facts, LinForm};
use proptest::prelude::*;

/// Concrete model of a span as a set of indices `[lo, hi)` / `{i}`.
#[derive(Clone, Debug)]
enum CSpan {
    Window { lo: i64, hi: i64 },
    Elem(i64),
}

impl CSpan {
    fn to_span(&self) -> Span {
        match *self {
            CSpan::Window { lo, hi } => Span::Window {
                lo: LinForm::constant(lo),
                hi: LinForm::constant(hi),
            },
            CSpan::Elem(i) => Span::Elem(LinForm::constant(i)),
        }
    }

    fn bounds(&self) -> (i64, i64) {
        match *self {
            CSpan::Window { lo, hi } => (lo, hi),
            CSpan::Elem(i) => (i, i + 1),
        }
    }

    /// Ground-truth intersection of the index sets (empty windows
    /// intersect nothing).
    fn intersects(&self, other: &CSpan) -> bool {
        let (a_lo, a_hi) = self.bounds();
        let (b_lo, b_hi) = other.bounds();
        a_lo.max(b_lo) < a_hi.min(b_hi)
    }
}

/// Decodes one `(tag, lo, len)` draw into a span: even tags make a
/// window `[lo, lo+len)`, odd tags a single element `{lo}` (the shim
/// has no `prop_oneof!`, so variants ride on an integer tag).
fn decode(tag: u8, lo: i64, len: i64) -> CSpan {
    if tag.is_multiple_of(2) {
        CSpan::Window { lo, hi: lo + len }
    } else {
        CSpan::Elem(lo)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn prover_is_sound_on_concrete_pairs(
        a_draw in (0u8..2, 0i64..64, 0i64..32),
        b_draw in (0u8..2, 0i64..64, 0i64..32),
    ) {
        let a = decode(a_draw.0, a_draw.1, a_draw.2);
        let b = decode(b_draw.0, b_draw.1, b_draw.2);
        let env = Env::default();
        let facts = Facts::empty(&env);
        let claim = spans_disjoint(&a.to_span(), &b.to_span(), &facts);
        if a.intersects(&b) {
            prop_assert!(
                !claim,
                "prover claimed intersecting {a:?} / {b:?} disjoint"
            );
        }
    }

    #[test]
    fn prover_is_complete_on_concrete_pairs(
        a_draw in (0u8..2, 0i64..64, 0i64..32),
        b_draw in (0u8..2, 0i64..64, 0i64..32),
    ) {
        let a = decode(a_draw.0, a_draw.1, a_draw.2);
        let b = decode(b_draw.0, b_draw.1, b_draw.2);
        let env = Env::default();
        let facts = Facts::empty(&env);
        // Degenerate empty windows are excluded: the prover treats
        // `[lo, hi)` as a footprint description, not a set, and the
        // conservative direction for "wrote nothing" is still "report".
        let (a_lo, a_hi) = a.bounds();
        let (b_lo, b_hi) = b.bounds();
        let nondegenerate = a_lo < a_hi && b_lo < b_hi;
        if nondegenerate && !a.intersects(&b) {
            prop_assert!(
                spans_disjoint(&a.to_span(), &b.to_span(), &facts),
                "prover failed on disjoint concrete pair {a:?} / {b:?}"
            );
        }
    }

    #[test]
    fn chunk_windows_are_self_disjoint_exactly_at_their_width(w in 1i64..256) {
        let env = Env::default();
        let facts = Facts::empty(&env);
        let width = LinForm::constant(w);
        let span = chunk_window("c", &width).expect("constant width multiplies");
        prop_assert!(
            span_self_disjoint(&span, "c", &facts),
            "[c*{w}, (c+1)*{w}) must be per-iteration disjoint"
        );
        // Widen by one element: consecutive chunks now share an index,
        // and the prover must refuse.
        let Span::Window { lo, hi } = span else { unreachable!("chunk_window is a window") };
        let widened = Span::Window { lo, hi: hi.add(&LinForm::constant(1)) };
        prop_assert!(
            !span_self_disjoint(&widened, "c", &facts),
            "widened chunk window must not prove self-disjoint"
        );
    }

    #[test]
    fn symbolic_chunk_width_stays_self_disjoint(idx in 0usize..4) {
        // The real sites use symbolic widths (`rows_per * n`); exercise
        // a few atom spellings to guard canonicalization.
        let names = ["w", "rows_per", "n", "size"];
        let env = Env::default();
        let facts = Facts::empty(&env);
        let width = LinForm::atom(names[idx]);
        let span = chunk_window("c", &width).expect("degree-2 product fits the budget");
        prop_assert!(span_self_disjoint(&span, "c", &facts));
    }
}
