//! Fixture tests: for every rule, one source snippet that must pass
//! clean and one that must fail with the expected `file:line`
//! diagnostic. These are the executable spec of what each rule
//! flags — if a rule's matcher drifts, these fail before the
//! workspace-wide gate ever runs.

use eta_lint::rules::{lint_source, registry_keys};
use eta_lint::Finding;
use std::collections::BTreeSet;

/// Fixture files claim to live in a numeric lib crate so every rule
/// is in force.
const NUMERIC_LIB: &str = "crates/core/src/fixture.rs";
/// A non-numeric lib crate: D1 does not apply, D2/P1/A1/T1 do.
const PLAIN_LIB: &str = "crates/workloads/src/fixture.rs";
/// A test file: only A1 and T1 apply.
const TEST_FILE: &str = "crates/core/tests/fixture.rs";

fn registry() -> BTreeSet<String> {
    registry_keys(r#"pub const GOOD: &str = "train_loss_mean";"#)
}

fn run(path: &str, src: &str) -> Vec<Finding> {
    lint_source(path, src, &registry())
}

fn rules_hit(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

#[track_caller]
fn assert_hits(path: &str, src: &str, rule: &str, line: u32) {
    let findings = run(path, src);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == rule && f.line == line && f.file == path),
        "expected a {rule} finding at {path}:{line}, got {findings:#?}"
    );
}

#[track_caller]
fn assert_clean(path: &str, src: &str) {
    let findings = run(path, src);
    assert!(findings.is_empty(), "expected clean, got {findings:#?}");
}

// --- D1 --------------------------------------------------------------------

#[test]
fn d1_flags_hashmap_in_numeric_crate() {
    let src = "use std::collections::HashMap;\n\
               pub fn f() -> HashMap<u32, f32> { HashMap::new() }\n";
    assert_hits(NUMERIC_LIB, src, "D1", 1);
    // The diagnostic carries file:line for every occurrence.
    let d1: Vec<u32> = run(NUMERIC_LIB, src)
        .into_iter()
        .filter(|f| f.rule == "D1")
        .map(|f| f.line)
        .collect();
    assert_eq!(d1, vec![1, 2, 2]);
}

#[test]
fn d1_allows_btreemap_and_nonnumeric_crates() {
    assert_clean(
        NUMERIC_LIB,
        "use std::collections::BTreeMap;\n\
         pub fn f() -> BTreeMap<u32, f32> { BTreeMap::new() }\n",
    );
    // HashMap is fine outside the numeric crates (here: workloads).
    assert_clean(
        PLAIN_LIB,
        "use std::collections::HashMap;\npub type T = HashMap<u32, u32>;\n",
    );
}

#[test]
fn d1_exempts_cfg_test_modules() {
    assert_clean(
        NUMERIC_LIB,
        "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n\
         \n    fn probe() -> HashMap<u32, u32> { HashMap::new() }\n}\n",
    );
}

// --- D2 --------------------------------------------------------------------

#[test]
fn d2_flags_entropy_sources() {
    assert_hits(
        NUMERIC_LIB,
        "pub fn r() { let _ = rand::thread_rng(); }\n",
        "D2",
        1,
    );
    assert_hits(
        PLAIN_LIB,
        "pub fn r() -> StdRng { StdRng::from_entropy() }\n",
        "D2",
        1,
    );
}

#[test]
fn d2_allows_seeded_rng_and_wall_clock_reads() {
    // Seeded construction is fine, and wall-clock *reads* are no
    // longer a token-level offence — the S2 taint analysis flags a
    // clock value only if it flows into a tensor buffer.
    assert_clean(
        NUMERIC_LIB,
        "pub fn f(seed: u64) -> StdRng { StdRng::seed_from_u64(seed) }\n\
         pub fn t() -> std::time::Instant { std::time::Instant::now() }\n\
         pub fn age(t: std::time::Instant) -> std::time::Duration { t.elapsed() }\n",
    );
}

// --- former D3 -------------------------------------------------------------

#[test]
fn unordered_reductions_are_no_longer_token_findings() {
    // D3 graduated into the semantic C2 deterministic-merge-order rule
    // (see tests/semantic_fixtures.rs): the AST version peels real
    // receiver chains instead of back-scanning tokens.
    let findings = run(
        NUMERIC_LIB,
        "pub fn s(xs: &[f32]) -> f32 {\n\
             xs.par_iter().map(|x| x * 2.0).sum()\n\
         }\n",
    );
    assert!(
        !rules_hit(&findings).contains(&"D3"),
        "D3 is retired at the token layer, got {findings:#?}"
    );
}

// --- former P1 -------------------------------------------------------------

#[test]
fn panic_sites_are_no_longer_token_findings() {
    // The P1 token audit graduated to the semantic S1 rule (see
    // tests/semantic_fixtures.rs): a panic-capable site is only
    // reported when a public numeric API can actually reach it, and
    // the diagnostic carries the call chain.
    assert_clean(
        PLAIN_LIB,
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert_clean(
        TEST_FILE,
        "fn probe(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
}

// --- A1 --------------------------------------------------------------------

#[test]
fn a1_flags_undocumented_unsafe() {
    let src = "pub fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n";
    assert_hits(PLAIN_LIB, src, "A1", 2);
    // A1 applies even in tests and shims.
    assert_hits(TEST_FILE, src, "A1", 2);
    assert_hits("shims/rand/src/fixture.rs", src, "A1", 2);
}

#[test]
fn a1_allows_unsafe_with_safety_comment() {
    assert_clean(
        PLAIN_LIB,
        "pub fn f(p: *const u32) -> u32 {\n\
             // SAFETY: caller guarantees p is valid and aligned.\n\
             unsafe { *p }\n\
         }\n",
    );
}

// --- T1 --------------------------------------------------------------------

#[test]
fn t1_flags_unregistered_key_literals() {
    let src = "pub fn f(t: &Telemetry) {\n    t.gauge(\"rogue_metric\", 1.0);\n}\n";
    assert_hits(PLAIN_LIB, src, "T1", 2);
}

#[test]
fn t1_allows_registry_keys_and_consts() {
    // Literal that IS in the registry, and a const-passed key.
    assert_clean(
        PLAIN_LIB,
        "pub fn f(t: &Telemetry) {\n\
             t.gauge(\"train_loss_mean\", 1.0);\n\
             t.incr(keys::TRAIN_EPOCHS_TOTAL);\n\
         }\n",
    );
}

// --- scope handling --------------------------------------------------------

#[test]
fn shims_only_get_a1() {
    // A shim may unwrap, index, read clocks, and use HashMap.
    assert_clean(
        "shims/rand/src/fixture.rs",
        "use std::collections::HashMap;\n\
         pub fn f(x: Option<u32>, xs: &[u32]) -> u32 {\n\
             let _ = std::time::Instant::now();\n\
             x.unwrap() + xs[0]\n\
         }\n",
    );
}

#[test]
fn unclassified_paths_produce_nothing() {
    assert!(run("results/scratch.rs", "pub fn f() { panic!(); }\n").is_empty());
    let _ = rules_hit(&[]);
}
