//! Fixture tests for the semantic rules (S1/S2/S3). Each drives
//! `analyze_sources` on a tiny synthetic workspace and asserts the
//! exact diagnostics — in particular the S1 call chains, which are the
//! whole point of the rule: a reviewer must be able to audit the path
//! from public API to panic site without re-deriving it.

use eta_lint::semantic::analyze_sources;
use eta_lint::Finding;

/// Paths that classify as numeric-crate library code.
const CORE: &str = "crates/core/src/fixture.rs";
const TENSOR: &str = "crates/tensor/src/fixture.rs";
/// Non-numeric library crate: S1's danger scan does not apply, the
/// telemetry value sink of S2 still does.
const WORKLOADS: &str = "crates/workloads/src/fixture.rs";

fn analyze(files: &[(&str, &str)]) -> (Vec<Finding>, Vec<Finding>) {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    let report = analyze_sources(&sources, None);
    (report.findings, report.warnings)
}

fn rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

// --- S1: panic reachability ------------------------------------------------

#[test]
fn s1_reports_exact_call_chain_through_private_helpers() {
    let src = "pub fn api(x: Option<u32>) -> u32 {\n\
               \x20   helper(x)\n\
               }\n\
               \n\
               fn helper(x: Option<u32>) -> u32 {\n\
               \x20   danger(x)\n\
               }\n\
               \n\
               fn danger(x: Option<u32>) -> u32 {\n\
               \x20   x.unwrap()\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    let s1 = rule(&findings, "S1");
    assert_eq!(s1.len(), 1, "exactly one reachable danger: {findings:#?}");
    assert_eq!(s1[0].file, CORE);
    assert_eq!(s1[0].line, 10);
    assert_eq!(
        s1[0].message,
        "`x.unwrap()` reachable from public API via core::api -> core::helper -> core::danger"
    );
}

#[test]
fn s1_reports_method_chain_with_impl_type_names() {
    let src = "pub struct Gate {\n\
               \x20   h: usize,\n\
               }\n\
               \n\
               impl Gate {\n\
               \x20   pub fn apply(&self, xs: &[f32]) -> f32 {\n\
               \x20       self.pick(xs)\n\
               \x20   }\n\
               \n\
               \x20   fn pick(&self, xs: &[f32]) -> f32 {\n\
               \x20       xs[self.h]\n\
               \x20   }\n\
               }\n";
    let (findings, _) = analyze(&[(TENSOR, src)]);
    let s1 = rule(&findings, "S1");
    assert_eq!(s1.len(), 1, "{findings:#?}");
    assert_eq!(s1[0].line, 11);
    assert!(
        s1[0]
            .message
            .ends_with("via tensor::Gate::apply -> tensor::Gate::pick"),
        "chain must name the impl types: {}",
        s1[0].message
    );
    assert!(
        s1[0].message.starts_with("unchecked index `xs["),
        "{}",
        s1[0].message
    );
}

#[test]
fn s1_unreachable_and_test_sites_are_silent() {
    // A danger nothing public calls, a danger under #[cfg(test)], and
    // a danger in a non-numeric crate: none are findings.
    let core = "pub fn api(x: u32) -> u32 {\n\
                \x20   x + 1\n\
                }\n\
                \n\
                fn dead(x: Option<u32>) -> u32 {\n\
                \x20   x.unwrap()\n\
                }\n\
                \n\
                #[cfg(test)]\n\
                mod tests {\n\
                \x20   pub fn probe() {\n\
                \x20       panic!(\"test only\");\n\
                \x20   }\n\
                }\n";
    let plain = "pub fn f(x: Option<u32>) -> u32 {\n\
                 \x20   x.unwrap()\n\
                 }\n";
    let (findings, _) = analyze(&[(CORE, core), (WORKLOADS, plain)]);
    assert!(rule(&findings, "S1").is_empty(), "{findings:#?}");
}

#[test]
fn s1_bounds_prover_discharges_guarded_indexing() {
    // Counter loops over asserted-equal lengths produce no findings;
    // the same access with an arbitrary index does, with the entry
    // point itself as the (one-element) chain.
    let clean = "pub fn dot(xs: &[f32], ys: &[f32]) -> f32 {\n\
                 \x20   assert_eq!(xs.len(), ys.len());\n\
                 \x20   let mut acc = 0.0;\n\
                 \x20   for i in 0..xs.len() {\n\
                 \x20       acc += xs[i] * ys[i];\n\
                 \x20   }\n\
                 \x20   acc\n\
                 }\n";
    let (findings, _) = analyze(&[(CORE, clean)]);
    assert!(rule(&findings, "S1").is_empty(), "{findings:#?}");

    let dirty = "pub fn pick(xs: &[f32], k: usize) -> f32 {\n\
                 \x20   xs[k]\n\
                 }\n";
    let (findings, _) = analyze(&[(CORE, dirty)]);
    let s1 = rule(&findings, "S1");
    assert_eq!(s1.len(), 1, "{findings:#?}");
    assert_eq!(s1[0].line, 2);
    assert_eq!(
        s1[0].message,
        "unchecked index `xs[k]` reachable from public API via core::pick"
    );
}

// --- S2: nondeterminism taint ----------------------------------------------

#[test]
fn s2_entropy_reaching_arithmetic_is_flagged() {
    let src = "pub fn jitter() -> f64 {\n\
               \x20   let r: f64 = rand::random();\n\
               \x20   r * 0.5\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    let s2 = rule(&findings, "S2");
    assert_eq!(s2.len(), 1, "{findings:#?}");
    assert_eq!(s2[0].line, 3);
    assert!(
        s2[0].message.contains("(entropy)") && s2[0].message.contains("arithmetic"),
        "{}",
        s2[0].message
    );
}

#[test]
fn s2_entropy_flows_through_helper_returns() {
    // Interprocedural: the taint enters through a private helper's
    // return value, not a local source.
    let src = "pub fn scale() -> f64 {\n\
               \x20   noise() * 0.5\n\
               }\n\
               \n\
               fn noise() -> f64 {\n\
               \x20   rand::random()\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    let s2 = rule(&findings, "S2");
    assert_eq!(s2.len(), 1, "{findings:#?}");
    assert_eq!(s2[0].line, 2);
    assert!(s2[0].message.contains("(entropy)"), "{}", s2[0].message);
}

#[test]
fn s2_clock_into_telemetry_gauge_is_clean() {
    // The PR 2 shard-reduce pattern: a measured duration that only
    // ever reaches a telemetry gauge is provably benign — timing
    // observability must not count as nondeterminism.
    let src = "pub fn timed(t: &Telemetry) {\n\
               \x20   let t0 = std::time::Instant::now();\n\
               \x20   let secs = t0.elapsed().as_secs_f64();\n\
               \x20   t.gauge_with(\"reduce_seconds\", secs);\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    assert!(rule(&findings, "S2").is_empty(), "{findings:#?}");
}

#[test]
fn s2_clock_into_tensor_buffer_is_flagged() {
    // ...but the same duration written into a numeric buffer is a
    // real reproducibility bug.
    let src = "pub fn stamp(out: &mut [f64]) {\n\
               \x20   assert!(!out.is_empty());\n\
               \x20   let t0 = std::time::Instant::now();\n\
               \x20   let dt = t0.elapsed().as_secs_f64();\n\
               \x20   out[0] = dt;\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    let s2 = rule(&findings, "S2");
    assert_eq!(s2.len(), 1, "{findings:#?}");
    assert_eq!(s2[0].line, 5);
    assert!(
        s2[0].message.contains("(clock)") && s2[0].message.contains("buffer write"),
        "{}",
        s2[0].message
    );
    // The is_empty guard also discharges the S1 index.
    assert!(rule(&findings, "S1").is_empty(), "{findings:#?}");
}

#[test]
fn s2_hash_iteration_order_into_telemetry_is_flagged() {
    // Values accumulated in HashMap iteration order carry hash-order
    // taint; telemetry must not depend on it even outside the numeric
    // crates.
    let src = "pub fn report(t: &Telemetry, m: &std::collections::HashMap<String, f64>) {\n\
               \x20   let mut s = 0.0;\n\
               \x20   for v in m.values() {\n\
               \x20       s += *v;\n\
               \x20   }\n\
               \x20   t.gauge_with(\"loss_sum\", s);\n\
               }\n";
    let (findings, _) = analyze(&[(WORKLOADS, src)]);
    let s2 = rule(&findings, "S2");
    assert_eq!(s2.len(), 1, "{findings:#?}");
    assert_eq!(s2[0].line, 6);
    assert!(
        s2[0].message.contains("(hash-order)") && s2[0].message.contains("telemetry value"),
        "{}",
        s2[0].message
    );
}

#[test]
fn s2_seeded_rng_stays_clean() {
    let src = "pub fn init(seed: u64, out: &mut [f64]) {\n\
               \x20   assert!(!out.is_empty());\n\
               \x20   let mut rng = StdRng::seed_from_u64(seed);\n\
               \x20   out[0] = rng.next_f64();\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    assert!(findings.is_empty(), "{findings:#?}");
}

// --- S3: telemetry key liveness --------------------------------------------

const KEYS: &str = "crates/telemetry/src/keys.rs";

#[test]
fn s3_warns_on_registered_but_never_emitted_key() {
    let keys = "pub const LIVE: &str = \"train_loss_mean\";\n\
                pub const DEAD: &str = \"stale_metric\";\n";
    // LIVE is emitted through its const path; DEAD never is.
    let emitter = "pub fn f(t: &Telemetry) {\n\
                   \x20   t.gauge(keys::LIVE, 1.0);\n\
                   }\n";
    let (_, warnings) = analyze(&[(KEYS, keys), (CORE, emitter)]);
    let s3 = rule(&warnings, "S3");
    assert_eq!(s3.len(), 1, "{warnings:#?}");
    assert_eq!(s3[0].file, KEYS);
    assert_eq!(s3[0].line, 2);
    assert_eq!(
        s3[0].message,
        "registered telemetry key \"stale_metric\" (const DEAD) is never emitted outside tests"
    );
}

#[test]
fn s3_literal_emission_counts_but_test_only_emission_does_not() {
    let keys = "pub const A: &str = \"metric_a\";\n\
                pub const B: &str = \"metric_b\";\n";
    // A is emitted as a string literal from lib code; B only from a
    // test module, which does not keep a key alive.
    let emitter = "pub fn f(t: &Telemetry) {\n\
                   \x20   t.incr(\"metric_a\");\n\
                   }\n\
                   \n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   pub fn probe(t: &Telemetry) {\n\
                   \x20       t.incr(\"metric_b\");\n\
                   \x20   }\n\
                   }\n";
    let (_, warnings) = analyze(&[(KEYS, keys), (CORE, emitter)]);
    let s3 = rule(&warnings, "S3");
    assert_eq!(s3.len(), 1, "{warnings:#?}");
    assert!(s3[0].message.contains("metric_b"), "{}", s3[0].message);
}

// --- H1: hot-path allocation discipline ------------------------------------

#[test]
fn h1_reports_allocation_with_call_chain_from_hot_root() {
    let src = "pub fn forward_ws(n: usize) -> f32 {\n\
               \x20   helper(n)\n\
               }\n\
               \n\
               fn helper(n: usize) -> f32 {\n\
               \x20   let buf = vec![0.0f32; n];\n\
               \x20   buf.iter().sum()\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    let h1 = rule(&findings, "H1");
    assert_eq!(h1.len(), 1, "{findings:#?}");
    assert_eq!(h1[0].file, CORE);
    assert_eq!(h1[0].line, 6);
    assert_eq!(
        h1[0].message,
        "`vec![…]` allocates in the per-timestep hot path, \
         reached via core::forward_ws -> core::helper"
    );
}

#[test]
fn h1_setup_regions_and_error_paths_stay_silent() {
    // `pack` is a setup stop (panel caching allocates by design), and
    // `Err(format!…)` is a cold path: neither may produce a finding.
    let src = "pub fn forward_ws(n: usize) -> Result<f32, String> {\n\
               \x20   let w = pack(n);\n\
               \x20   if n == 0 {\n\
               \x20       return Err(format!(\"empty batch: {n}\"));\n\
               \x20   }\n\
               \x20   Ok(w)\n\
               }\n\
               \n\
               fn pack(n: usize) -> f32 {\n\
               \x20   let buf = vec![0.0f32; n];\n\
               \x20   buf.iter().sum()\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    assert!(rule(&findings, "H1").is_empty(), "{findings:#?}");
}

#[test]
fn h1_is_scoped_to_the_hot_call_graph() {
    // The same allocating helper is fine when only cold code calls it.
    let src = "pub fn report(n: usize) -> f32 {\n\
               \x20   helper(n)\n\
               }\n\
               \n\
               fn helper(n: usize) -> f32 {\n\
               \x20   let buf = vec![0.0f32; n];\n\
               \x20   buf.iter().sum()\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    assert!(rule(&findings, "H1").is_empty(), "{findings:#?}");
}

// --- A2: SIMD readiness ----------------------------------------------------

#[test]
fn a2_flags_naked_intrinsic_use() {
    let src = "pub fn dot8(n: usize) -> f32 {\n\
               \x20   let acc = unsafe { _mm256_setzero_ps() };\n\
               \x20   0.0\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    let a2 = rule(&findings, "A2");
    assert_eq!(a2.len(), 2, "{findings:#?}");
    assert_eq!(a2[0].file, CORE);
    assert_eq!(a2[0].line, 2);
    assert_eq!(
        a2[0].message,
        "intrinsic `_mm256_setzero_ps` lacks a `// SAFETY:` comment within 3 lines above"
    );
    assert_eq!(a2[1].line, 2);
    assert_eq!(
        a2[1].message,
        "intrinsic `_mm256_setzero_ps` used outside a #[target_feature] function"
    );
}

#[test]
fn a2_flags_unguarded_call_into_target_feature_fn() {
    let src = "#[target_feature(enable = \"avx2\")]\n\
               unsafe fn sum8(n: usize) -> f32 {\n\
               \x20   // SAFETY: caller verified avx2 support.\n\
               \x20   let acc = _mm256_setzero_ps();\n\
               \x20   0.0\n\
               }\n\
               \n\
               pub fn sum(n: usize) -> f32 {\n\
               \x20   unsafe { sum8(n) }\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    let a2 = rule(&findings, "A2");
    assert_eq!(a2.len(), 1, "{findings:#?}");
    assert_eq!(a2[0].line, 9);
    assert_eq!(
        a2[0].message,
        "call to #[target_feature] fn `sum8` without an \
         is_x86_feature_detected! guard and scalar fallback"
    );
}

#[test]
fn a2_detect_guarded_dispatch_with_fallback_stays_clean() {
    let src = "#[target_feature(enable = \"avx2\")]\n\
               unsafe fn sum8(n: usize) -> f32 {\n\
               \x20   // SAFETY: caller verified avx2 support.\n\
               \x20   let acc = _mm256_setzero_ps();\n\
               \x20   0.0\n\
               }\n\
               \n\
               pub fn sum(n: usize) -> f32 {\n\
               \x20   if is_x86_feature_detected!(\"avx2\") {\n\
               \x20       unsafe { sum8(n) }\n\
               \x20   } else {\n\
               \x20       n as f32\n\
               \x20   }\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    assert!(rule(&findings, "A2").is_empty(), "{findings:#?}");
}

#[test]
fn a2_safe_target_feature_helper_chain_stays_clean() {
    // The real `simd.rs` shape (target_feature_1.1): *safe* TF
    // helpers call each other freely — only the non-TF entry needs
    // the compound avx2+fma detect guard with a scalar else branch.
    let src = "#[target_feature(enable = \"avx2\", enable = \"fma\")]\n\
               fn splat8(x: f32) -> f32 {\n\
               \x20   // SAFETY: register-only intrinsic; caller proved avx2.\n\
               \x20   let v = _mm256_set1_ps(x);\n\
               \x20   x\n\
               }\n\
               \n\
               #[target_feature(enable = \"avx2\", enable = \"fma\")]\n\
               fn tile(x: f32) -> f32 {\n\
               \x20   splat8(x)\n\
               }\n\
               \n\
               pub fn gemm(x: f32) -> f32 {\n\
               \x20   if is_x86_feature_detected!(\"avx2\") && is_x86_feature_detected!(\"fma\") {\n\
               \x20       // SAFETY: the feature guard above proves avx2 and fma.\n\
               \x20       unsafe { tile(x) }\n\
               \x20   } else {\n\
               \x20       x\n\
               \x20   }\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    assert!(rule(&findings, "A2").is_empty(), "{findings:#?}");
}

#[test]
fn a2_flags_compound_guard_without_scalar_fallback() {
    // Detect guard present but no else branch: the portability
    // contract (scalar fallback on every path) is still broken.
    let src = "#[target_feature(enable = \"avx2\", enable = \"fma\")]\n\
               fn tile(x: f32) -> f32 {\n\
               \x20   // SAFETY: register-only intrinsic; caller proved avx2.\n\
               \x20   let v = _mm256_set1_ps(x);\n\
               \x20   x\n\
               }\n\
               \n\
               pub fn gemm(x: f32) -> f32 {\n\
               \x20   if is_x86_feature_detected!(\"avx2\") && is_x86_feature_detected!(\"fma\") {\n\
               \x20       // SAFETY: the feature guard above proves avx2 and fma.\n\
               \x20       return unsafe { tile(x) };\n\
               \x20   }\n\
               \x20   x\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    let a2 = rule(&findings, "A2");
    assert_eq!(a2.len(), 1, "{findings:#?}");
    assert_eq!(a2[0].line, 11);
    assert_eq!(
        a2[0].message,
        "call to #[target_feature] fn `tile` without an \
         is_x86_feature_detected! guard and scalar fallback"
    );
}

#[test]
fn a2_flags_unguarded_call_into_safe_target_feature_helper() {
    // A *safe* TF fn (no `unsafe fn`) is still a dispatch hazard: the
    // caller must prove the features at runtime before jumping in.
    let src = "#[target_feature(enable = \"avx2\", enable = \"fma\")]\n\
               fn tile(x: f32) -> f32 {\n\
               \x20   // SAFETY: register-only intrinsic; caller proved avx2.\n\
               \x20   let v = _mm256_set1_ps(x);\n\
               \x20   x\n\
               }\n\
               \n\
               pub fn gemm(x: f32) -> f32 {\n\
               \x20   unsafe { tile(x) }\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    let a2 = rule(&findings, "A2");
    assert_eq!(a2.len(), 1, "{findings:#?}");
    assert_eq!(a2[0].line, 9);
    assert!(a2[0].message.contains("without an"), "{findings:#?}");
}

// --- DS1: dead stores ------------------------------------------------------

#[test]
fn ds1_flags_computed_store_overwritten_before_read() {
    let src = "pub fn stats(xs: &[f32]) -> f32 {\n\
               \x20   let mut acc = 0.0;\n\
               \x20   acc = xs.iter().sum();\n\
               \x20   acc = 0.0;\n\
               \x20   acc\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    let ds1 = rule(&findings, "DS1");
    assert_eq!(ds1.len(), 1, "{findings:#?}");
    assert_eq!(ds1[0].file, CORE);
    assert_eq!(ds1[0].line, 3);
    assert_eq!(
        ds1[0].message,
        "dead store to `acc`: the computed value is overwritten or dropped before any read"
    );
}

#[test]
fn ds1_read_before_overwrite_and_element_stores_stay_clean() {
    // First store is read by `scaled`; the zero re-init is a trivial
    // rhs; element stores never kill the whole buffer.
    let src = "pub fn stats(xs: &[f32], buf: &mut [f32]) -> f32 {\n\
               \x20   let mut acc = 0.0;\n\
               \x20   acc = xs.iter().sum();\n\
               \x20   let scaled = acc * 0.5;\n\
               \x20   acc = 0.0;\n\
               \x20   let mut tmp = vec![0.0; xs.len()];\n\
               \x20   for i in 0..xs.len() {\n\
               \x20       tmp[i] = xs[i] * 2.0;\n\
               \x20   }\n\
               \x20   scaled + acc + tmp.iter().sum::<f32>()\n\
               }\n";
    let (findings, _) = analyze(&[(CORE, src)]);
    assert!(rule(&findings, "DS1").is_empty(), "{findings:#?}");
}

// --- S1 2-D prover: flattened indexing from constructor invariants ---------

#[test]
fn s1_two_d_prover_discharges_flattened_index_from_ctor_invariant() {
    // `zeros` establishes `data.len() == rows * cols`; the prover must
    // discharge `data[r * cols + c]` under the loop bounds with no
    // allowlist entry and no assert.
    let src = "pub struct Grid {\n\
               \x20   data: Vec<f32>,\n\
               \x20   rows: usize,\n\
               \x20   cols: usize,\n\
               }\n\
               \n\
               impl Grid {\n\
               \x20   pub fn zeros(rows: usize, cols: usize) -> Grid {\n\
               \x20       Grid { data: vec![0.0; rows * cols], rows, cols }\n\
               \x20   }\n\
               \n\
               \x20   pub fn sum(&self) -> f32 {\n\
               \x20       let mut acc = 0.0;\n\
               \x20       for r in 0..self.rows {\n\
               \x20           for c in 0..self.cols {\n\
               \x20               acc += self.data[r * self.cols + c];\n\
               \x20           }\n\
               \x20       }\n\
               \x20       acc\n\
               \x20   }\n\
               }\n";
    let (findings, _) = analyze(&[(TENSOR, src)]);
    assert!(rule(&findings, "S1").is_empty(), "{findings:#?}");
}

#[test]
fn s1_two_d_prover_still_flags_unverifiable_buffer() {
    // Same indexing, but the constructor takes the buffer from the
    // caller, so no length invariant is established and the index
    // obligation cannot be discharged.
    let src = "pub struct Grid {\n\
               \x20   data: Vec<f32>,\n\
               \x20   rows: usize,\n\
               \x20   cols: usize,\n\
               }\n\
               \n\
               impl Grid {\n\
               \x20   pub fn wrap(data: Vec<f32>, rows: usize, cols: usize) -> Grid {\n\
               \x20       Grid { data, rows, cols }\n\
               \x20   }\n\
               \n\
               \x20   pub fn sum(&self) -> f32 {\n\
               \x20       let mut acc = 0.0;\n\
               \x20       for r in 0..self.rows {\n\
               \x20           for c in 0..self.cols {\n\
               \x20               acc += self.data[r * self.cols + c];\n\
               \x20           }\n\
               \x20       }\n\
               \x20       acc\n\
               \x20   }\n\
               }\n";
    let (findings, _) = analyze(&[(TENSOR, src)]);
    let s1 = rule(&findings, "S1");
    assert_eq!(s1.len(), 1, "{findings:#?}");
    assert_eq!(s1[0].line, 16);
    assert_eq!(
        s1[0].message,
        "unchecked index `self.data[r*self.cols+c]` reachable from \
         public API via tensor::Grid::sum"
    );
}

// --- Layer 4: C1 data-race freedom -----------------------------------------

#[test]
fn c1_flags_shared_mut_capture_with_exact_line_and_chain() {
    let src = r#"
pub fn step(out: &mut Vec<f32>) {
    rayon::scope(|s| {
        s.spawn(move |_| {
            out[0] = 1.0;
        });
        s.spawn(move |_| {
            out[0] = 2.0;
        });
    });
}
"#;
    let (findings, _) = analyze(&[(CORE, src)]);
    let c1 = rule(&findings, "C1");
    assert_eq!(c1.len(), 1, "{findings:#?}");
    assert_eq!(c1[0].file, CORE);
    assert_eq!(c1[0].line, 4);
    // The diagnostic names BOTH capture chains so the overlap is
    // auditable without re-running the analysis.
    assert!(
        c1[0].message.contains("`out` via spawn@4 -> out (line 4)"),
        "first chain missing: {}",
        c1[0].message
    );
    assert!(
        c1[0].message.contains("`out` via spawn@7 -> out (line 7)"),
        "second chain missing: {}",
        c1[0].message
    );
}

#[test]
fn c1_passes_disjoint_chunks_mut_partition() {
    let src = r#"
pub fn par_blocks(out: &mut [f32], n: usize, rows_per: usize) {
    rayon::scope(|scope| {
        for (chunk_idx, chunk) in out.chunks_mut(rows_per * n).enumerate() {
            let row0 = chunk_idx * rows_per;
            scope.spawn(move |_| {
                let rows = chunk.len() / n.max(1);
                for v in chunk.iter_mut() {
                    *v = (row0 + rows) as f32;
                }
            });
        }
    });
}
"#;
    let (findings, _) = analyze(&[(TENSOR, src)]);
    assert!(
        rule(&findings, "C1").is_empty(),
        "chunks_mut row blocks must prove disjoint: {findings:#?}"
    );
}

#[test]
fn c1_passes_round_robin_bucket_pattern() {
    // Miniature of the engine's sharded scope: round-robin buckets of
    // &mut result slots, one spawn per worker, per-worker workspace
    // slots, and a let-closure worker body captured by reference.
    let src = r#"
pub fn engine(slots: &mut Vec<Option<f32>>, ws_slots: &mut [f32], workers: usize) {
    let run_shard = |i: usize, ws: &mut f32| {
        *ws += i as f32;
        Some(*ws)
    };
    let mut buckets: Vec<Vec<(usize, &mut Option<f32>)>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (i, slot) in slots.iter_mut().enumerate() {
        buckets[i % workers].push((i, slot));
    }
    let run_shard = &run_shard;
    rayon::scope(|scope| {
        for (bucket, ws) in buckets.into_iter().zip(ws_slots.iter_mut()) {
            scope.spawn(move |_| {
                for (i, slot) in bucket {
                    *slot = Some(run_shard(i, ws));
                }
            });
        }
    });
}
"#;
    let (findings, _) = analyze(&[(CORE, src)]);
    let conc: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "C1" || f.rule == "C2")
        .collect();
    assert!(
        conc.is_empty(),
        "bucket pattern must prove clean: {findings:#?}"
    );
}

// --- Layer 4: C2 deterministic merge order ---------------------------------

#[test]
fn c2_flags_completion_order_channel_merge() {
    let src = r#"
pub fn reduce_shards(shards: usize) -> f32 {
    let (tx, rx) = std::sync::mpsc::channel();
    let mut total = 0.0f32;
    for _ in 0..shards {
        if let Ok(v) = rx.recv() {
            total += v;
        }
    }
    drop(tx);
    total
}
"#;
    let (findings, _) = analyze(&[(CORE, src)]);
    let c2 = rule(&findings, "C2");
    assert!(
        c2.iter().any(|f| f.file == CORE && f.line == 3),
        "channel construction at line 3: {findings:#?}"
    );
    assert!(
        c2.iter()
            .any(|f| f.line == 6 && f.message.contains("completion order")),
        "recv at line 6: {findings:#?}"
    );
}

#[test]
fn c2_flags_reordered_parallel_reduction_and_passes_sequential_merge() {
    let src = r#"
pub fn bad(xs: &[f32]) -> f32 {
    xs.par_iter().map(|x| x * 2.0).sum()
}

pub fn good(slots: &[f32]) -> f32 {
    let mut total = 0.0f32;
    for v in slots.iter() {
        total += v;
    }
    total
}
"#;
    let (findings, _) = analyze(&[(CORE, src)]);
    let c2 = rule(&findings, "C2");
    assert_eq!(c2.len(), 1, "{findings:#?}");
    assert_eq!(c2[0].line, 3);
    assert!(
        c2[0].message.contains("par_iter"),
        "source named: {}",
        c2[0].message
    );
}

#[test]
fn c2_flags_cross_closure_write_read() {
    let src = r#"
pub fn bad(state: &mut Vec<f32>, out: &mut [f32]) {
    rayon::scope(|s| {
        s.spawn(move |_| {
            state[0] = 1.0;
        });
        s.spawn(move |_| {
            out[0] = state[0];
        });
    });
}
"#;
    let (findings, _) = analyze(&[(CORE, src)]);
    let c2 = rule(&findings, "C2");
    assert_eq!(c2.len(), 1, "{findings:#?}");
    assert_eq!(c2[0].line, 4);
    assert!(
        c2[0].message.contains("`state` via spawn@4 -> state"),
        "{}",
        c2[0].message
    );
}

// --- Layer 4: C3 synchronization discipline --------------------------------

#[test]
fn c3_flags_mutex_in_numeric_crate_and_accepts_sync_justification() {
    let src = r#"
use std::sync::Mutex;

pub struct State {
    inner: Mutex<Vec<f32>>,
}

pub struct Counters {
    // SYNC: telemetry mirror; numeric paths never read through it.
    counts: Mutex<Vec<u64>>,
}
"#;
    let (findings, _) = analyze(&[(CORE, src)]);
    let c3 = rule(&findings, "C3");
    assert_eq!(c3.len(), 1, "{findings:#?}");
    assert_eq!(c3[0].file, CORE);
    assert_eq!(c3[0].line, 5);
    assert!(c3[0].message.contains("`Mutex`"), "{}", c3[0].message);
}

#[test]
fn c3_does_not_apply_outside_numeric_crates() {
    let src = r#"
use std::sync::Mutex;

pub struct Registry {
    entries: Mutex<Vec<u64>>,
}
"#;
    let (findings, _) = analyze(&[(WORKLOADS, src)]);
    assert!(
        rule(&findings, "C3").is_empty(),
        "C3 binds numeric crates only: {findings:#?}"
    );
}
