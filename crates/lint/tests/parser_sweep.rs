//! Parser totality over the real workspace: every `.rs` file must
//! parse with zero recorded errors. This is the executable contract
//! that keeps the tolerant parser honest — "tolerant" covers fuzz
//! input and future Rust, not gaps on code the semantic rules must
//! actually analyze.

use eta_lint::ast::{walk_items, ItemKind};
use eta_lint::parser::parse;
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    eta_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint")
}

fn rs_files(root: &Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("read_dir") {
            let path = entry.expect("dir entry").path();
            let name = path
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') || name == "results" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

#[test]
fn every_workspace_file_parses_without_errors() {
    let root = workspace_root();
    let files = rs_files(&root);
    assert!(
        files.len() > 30,
        "suspiciously few files found: {}",
        files.len()
    );
    let mut failures = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path).expect("read source");
        let parsed = parse(&src);
        for e in &parsed.errors {
            failures.push(format!(
                "{}:{}: {}",
                path.strip_prefix(&root).unwrap_or(path).display(),
                e.line,
                e.message
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} parse error(s) across the workspace:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn sweep_finds_real_structure_not_empty_trees() {
    // Guard against the parser "succeeding" by producing nothing:
    // across the workspace we must see a healthy volume of items and
    // function bodies.
    let root = workspace_root();
    let mut fns = 0usize;
    let mut impls = 0usize;
    for path in rs_files(&root) {
        let src = std::fs::read_to_string(&path).expect("read source");
        let parsed = parse(&src);
        walk_items(&parsed.items, &mut |item| match &item.kind {
            ItemKind::Fn(def) if def.body.is_some() => fns += 1,
            ItemKind::Impl { .. } => impls += 1,
            _ => {}
        });
    }
    assert!(fns > 300, "expected >300 fn bodies, parsed {fns}");
    assert!(impls > 50, "expected >50 impl blocks, parsed {impls}");
}
