//! End-to-end check of the `--telemetry <dir>` pipeline: produce JSONL
//! streams through the exact helpers the harness binaries use
//! ([`eta_bench::telemetry_to`] / the env-var path `run_all` sets), then
//! re-read and parse every line, asserting the acceptance metrics —
//! trainer epochs, memsim footprint, accelerator PE occupancy — appear
//! under their documented names.

use eta_accel::timeline::{trace_instrumented, Alloc, CellKernels};
use eta_bench::{scaled_config, scaled_task, SEED};
use eta_lstm_core::{Trainer, TrainingStrategy};
use eta_workloads::Benchmark;
use std::collections::BTreeSet;
use std::io::BufRead;

fn stream_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("eta-telemetry-test-{}", std::process::id()));
    // Stale leftovers from a previous crashed run would confuse the
    // per-file assertions below.
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn jsonl_streams_reread_with_expected_metrics() {
    let dir = stream_dir();

    // Trainer-side stream, as table02_accuracy builds it.
    {
        let t = eta_bench::telemetry_to(&dir, "itest_trainer").expect("open stream");
        let cfg = scaled_config(Benchmark::Trec10);
        let task = scaled_task(Benchmark::Trec10);
        let mut trainer = Trainer::new(cfg, TrainingStrategy::CombinedMs, SEED)
            .expect("trainer")
            .with_telemetry(t.clone());
        trainer.run(&task, 2).expect("training");
        t.flush();
    }

    // Accelerator-side stream, as fig10_utilization builds it.
    {
        let t = eta_bench::telemetry_to(&dir, "itest_accel").expect("open stream");
        let cells = vec![
            CellKernels {
                mm_ops: 800_000,
                ew_ops: 200_000,
            };
            3
        ];
        trace_instrumented(&cells, 1024.0, Alloc::Dynamic, Some(&t));
        t.flush();
    }

    let mut all_metrics = BTreeSet::new();
    let mut all_spans = BTreeSet::new();
    for name in ["itest_trainer", "itest_accel"] {
        let path = dir.join(format!("{name}.jsonl"));
        let file =
            std::fs::File::open(&path).unwrap_or_else(|e| panic!("open {}: {e}", path.display()));
        let mut lines = 0usize;
        for (i, line) in std::io::BufReader::new(file).lines().enumerate() {
            let line = line.expect("read line");
            let value: serde_json::Value = serde_json::from_str(&line)
                .unwrap_or_else(|e| panic!("{name} line {i} is not JSON: {e}\n{line}"));
            let event_type = value
                .get("type")
                .and_then(|t| t.as_str())
                .unwrap_or_else(|| panic!("{name} line {i} has no type tag"));
            if i == 0 {
                assert_eq!(event_type, "manifest", "{name} must lead with its manifest");
                let run = value.get("run").expect("manifest event carries the run");
                assert_eq!(
                    run.get("binary").and_then(|b| b.as_str()),
                    Some(name),
                    "manifest names its binary"
                );
                assert!(run.get("seed").is_some());
                assert!(run.get("config_hash").is_some());
            } else {
                match event_type {
                    "metric" => {
                        all_metrics.insert(
                            value
                                .get("metric")
                                .and_then(|m| m.get("name"))
                                .and_then(|n| n.as_str())
                                .expect("metric has a name")
                                .to_string(),
                        );
                    }
                    "span" => {
                        all_spans.insert(
                            value
                                .get("path")
                                .and_then(|p| p.as_str())
                                .expect("span has a path")
                                .to_string(),
                        );
                    }
                    "span_summary" => {
                        all_spans.insert(
                            value
                                .get("span")
                                .and_then(|s| s.get("path"))
                                .and_then(|p| p.as_str())
                                .expect("span summary has a path")
                                .to_string(),
                        );
                    }
                    other => panic!("{name} line {i}: unexpected event type {other}"),
                }
            }
            lines += 1;
        }
        assert!(
            lines > 1,
            "{name} stream must hold events beyond the manifest"
        );
    }

    // The acceptance triple: trainer epochs, memsim footprint, accel PE
    // occupancy, all under their documented names.
    for required in [
        eta_telemetry::keys::TRAIN_EPOCHS_TOTAL,
        eta_telemetry::keys::TRAIN_PEAK_FOOTPRINT_BYTES,
        eta_telemetry::keys::MEMSIM_PEAK_TOTAL_BYTES,
        eta_telemetry::keys::ACCEL_PE_BUSY_FRACTION,
        eta_telemetry::keys::ACCEL_SWING_HANDOFFS_TOTAL,
    ] {
        assert!(
            all_metrics.contains(required),
            "missing metric {required}; streams held {all_metrics:?}"
        );
    }
    assert!(all_spans.contains("epoch"), "spans held {all_spans:?}");
    assert!(
        all_spans.contains("epoch/batch"),
        "spans held {all_spans:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
