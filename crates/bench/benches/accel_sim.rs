//! Throughput of the accelerator simulator itself across architecture
//! variants and the six paper benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use eta_accel::arch::{AccelConfig, ArchKind, EtaAccel};
use eta_memsim::model::OptEffects;
use eta_workloads::Benchmark;
use std::hint::black_box;

fn bench_arch_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("accel_simulate");
    let shape = Benchmark::Ptb.spec().shape();
    for kind in [ArchKind::LstmInf, ArchKind::StaticArch, ArchKind::DynArch] {
        let machine = EtaAccel::new(AccelConfig::paper_4board(), kind);
        group.bench_function(kind.label(), |bench| {
            bench.iter(|| black_box(machine.simulate(&shape, &OptEffects::baseline())));
        });
    }
    group.finish();
}

fn bench_all_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("accel_simulate_benchmarks");
    let machine = EtaAccel::new(AccelConfig::paper_4board(), ArchKind::DynArch);
    let eff = OptEffects::combined(0.35, 0.5);
    for b in Benchmark::ALL {
        let shape = b.spec().shape();
        group.bench_function(b.spec().abbr, |bench| {
            bench.iter(|| black_box(machine.simulate(&shape, &eff)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_arch_variants, bench_all_benchmarks);
criterion_main!(benches);
