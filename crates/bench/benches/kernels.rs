//! Kernel-level micro-benchmarks of the tensor substrate: the GEMM
//! orientations LSTM training uses, element-wise kernels, and the MS1
//! sparse compress/decode path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eta_tensor::{init, Matrix, SparseVec};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let a = init::uniform(n, n, -1.0, 1.0, 1);
        let b = init::uniform(n, n, -1.0, 1.0, 2);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_nn(&b).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_nt(&b).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_tn(&b).unwrap()));
        });
    }
    group.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("elementwise");
    group.sample_size(20);
    let a = init::uniform(128, 1024, -1.0, 1.0, 3);
    let b = init::uniform(128, 1024, -1.0, 1.0, 4);
    group.bench_function("hadamard_128x1024", |bench| {
        bench.iter(|| black_box(a.hadamard(&b).unwrap()));
    });
    group.bench_function("sigmoid_map_128x1024", |bench| {
        bench.iter(|| black_box(a.map(eta_tensor::activation::sigmoid)));
    });
    group.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("ms1_sparse");
    group.sample_size(20);
    let dense: Vec<f32> = (0..131_072)
        .map(|i| if i % 3 == 0 { 0.5 } else { 0.01 })
        .collect();
    group.bench_function("compress_128k_at_0.1", |bench| {
        bench.iter(|| black_box(SparseVec::compress(&dense, 0.1)));
    });
    let sv = SparseVec::compress(&dense, 0.1);
    group.bench_function("decode_128k", |bench| {
        bench.iter(|| black_box(sv.decode()));
    });
    let grad = init::uniform(1, dense.len(), -1.0, 1.0, 5);
    group.bench_function("sparse_mul_dense_128k", |bench| {
        bench.iter(|| black_box(sv.mul_dense(grad.as_slice())));
    });
    group.finish();
}

fn bench_parallel_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_nt_parallel_256x256");
    group.sample_size(10);
    let a = init::uniform(256, 256, -1.0, 1.0, 21);
    let b = init::uniform(256, 256, -1.0, 1.0, 22);
    for &threads in &[1usize, 2, 4] {
        group.bench_function(format!("threads_{threads}"), |bench| {
            bench.iter(|| black_box(a.matmul_nt_par(&b, threads).unwrap()));
        });
    }
    group.finish();
}

fn bench_outer(c: &mut Criterion) {
    let mut group = c.benchmark_group("outer_product");
    group.sample_size(20);
    let u: Vec<f32> = (0..512).map(|i| i as f32 / 512.0).collect();
    let v: Vec<f32> = (0..512).map(|i| 1.0 - i as f32 / 512.0).collect();
    group.bench_function("outer_512x512", |bench| {
        bench.iter(|| black_box(Matrix::outer(&u, &v)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_elementwise,
    bench_sparse,
    bench_parallel_matmul,
    bench_outer
);
criterion_main!(benches);
