//! Cycle-accurate accumulator simulation cost across stream lengths —
//! supports the Table III latency analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eta_accel::accumulator::AccumulatorSim;
use std::hint::black_box;

fn bench_streaming_accumulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("accumulator_sim");
    let sim = AccumulatorSim::new(8);
    for &n in &[64usize, 256, 1024, 4096] {
        let values = vec![1.0f32; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(sim.run(&values)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming_accumulation);
criterion_main!(benches);
