//! Training-step latency per strategy: how much CPU-side work the MS1
//! compression and MS2 skipping save on a real (scaled) model.

use criterion::{criterion_group, criterion_main, Criterion};
use eta_bench::{scaled_task, SEED};
use eta_lstm_core::{Trainer, TrainingStrategy};
use eta_workloads::Benchmark;
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_epoch_scaled_imdb");
    group.sample_size(10);
    for strategy in TrainingStrategy::ALL {
        let cfg = eta_bench::scaled_config(Benchmark::Imdb);
        let task = scaled_task(Benchmark::Imdb);
        group.bench_function(strategy.to_string(), |bench| {
            bench.iter(|| {
                let mut trainer = Trainer::new(cfg, strategy, SEED).unwrap();
                // 4 epochs so MS2 gets past its warm-up and skips.
                black_box(trainer.run(&task, 4).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_scaled_ptb");
    group.sample_size(20);
    let cfg = eta_bench::scaled_config(Benchmark::Ptb);
    let task = scaled_task(Benchmark::Ptb);
    let trainer = Trainer::new(cfg, TrainingStrategy::Baseline, SEED).unwrap();
    let batch = eta_lstm_core::Task::batch(&task, 0, 0);
    group.bench_function("forward_inference", |bench| {
        bench.iter(|| black_box(trainer.model().forward_inference(&batch.inputs).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_inference);
criterion_main!(benches);
