//! Training-step latency per strategy: how much CPU-side work the MS1
//! compression and MS2 skipping save on a real (scaled) model.

use criterion::{criterion_group, criterion_main, Criterion};
use eta_bench::{scaled_task, SEED};
use eta_lstm_core::{Parallelism, Trainer, TrainingStrategy};
use eta_workloads::Benchmark;
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_epoch_scaled_imdb");
    group.sample_size(10);
    for strategy in TrainingStrategy::ALL {
        let cfg = eta_bench::scaled_config(Benchmark::Imdb);
        let task = scaled_task(Benchmark::Imdb);
        group.bench_function(strategy.to_string(), |bench| {
            bench.iter(|| {
                let mut trainer = Trainer::new(cfg, strategy, SEED).unwrap();
                // 4 epochs so MS2 gets past its warm-up and skips.
                black_box(trainer.run(&task, 4).unwrap())
            });
        });
    }
    group.finish();
}

/// Guard for the `telemetry` feature's hot-path cost: a full
/// instrumented training run (spans + metric mirrors into the registry,
/// no sinks) must stay within 5 % of the bare run. The comparison is
/// measured directly (median of interleaved repetitions) so the guard
/// can assert, not just display.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let cfg = eta_bench::scaled_config(Benchmark::Imdb);
    let task = scaled_task(Benchmark::Imdb);
    let run = |with_telemetry: bool| {
        let mut trainer = Trainer::new(cfg, TrainingStrategy::CombinedMs, SEED).unwrap();
        if with_telemetry {
            let manifest = eta_telemetry::RunManifest::capture(
                "bench",
                eta_telemetry::config_hash(&SEED),
                SEED,
            );
            trainer = trainer.with_telemetry(eta_telemetry::Telemetry::new(manifest));
        }
        trainer.run(&task, 4).unwrap()
    };

    let mut group = c.benchmark_group("telemetry_overhead_scaled_imdb");
    group.sample_size(10);
    group.bench_function("without_telemetry", |bench| {
        bench.iter(|| black_box(run(false)));
    });
    group.bench_function("with_telemetry", |bench| {
        bench.iter(|| black_box(run(true)));
    });
    group.finish();

    // Interleave the two variants so drift hits both equally, and
    // compare medians (robust against a stray slow repetition).
    let mut bare = Vec::new();
    let mut instrumented = Vec::new();
    for _ in 0..7 {
        let t0 = std::time::Instant::now();
        black_box(run(false));
        bare.push(t0.elapsed().as_secs_f64());
        let t1 = std::time::Instant::now();
        black_box(run(true));
        instrumented.push(t1.elapsed().as_secs_f64());
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let ratio = median(&mut instrumented) / median(&mut bare);
    println!(
        "telemetry overhead: {:+.2}% (instrumented/bare ratio {ratio:.4})",
        (ratio - 1.0) * 100.0
    );
    assert!(
        ratio < 1.05,
        "telemetry hot path exceeds the 5% overhead budget: ratio {ratio:.4}"
    );
}

/// Guard for the span *tracing* cost: a training run with telemetry
/// plus an attached [`eta_prof::Tracer`] (every span boundary recorded
/// with a timestamp) must stay within 5 % of the same telemetry run
/// with no tracer. This is the ISSUE's <5 % tracing-overhead contract
/// — the spans are always compiled in (`prof` is a default feature);
/// attaching the observer is what turns recording on.
fn bench_tracing_overhead(c: &mut Criterion) {
    let cfg = eta_bench::scaled_config(Benchmark::Imdb);
    let task = scaled_task(Benchmark::Imdb);
    let run = |with_tracer: bool| {
        let manifest =
            eta_telemetry::RunManifest::capture("bench", eta_telemetry::config_hash(&SEED), SEED);
        let telemetry = eta_telemetry::Telemetry::new(manifest);
        let tracer = with_tracer.then(|| {
            let tracer = eta_prof::Tracer::new();
            telemetry.set_span_observer(tracer.clone());
            tracer
        });
        let mut trainer = Trainer::new(cfg, TrainingStrategy::CombinedMs, SEED)
            .unwrap()
            .with_telemetry(telemetry.clone());
        let report = trainer.run(&task, 4).unwrap();
        if let Some(tracer) = tracer {
            telemetry.clear_span_observer();
            assert!(tracer.span_count() > 0, "tracer saw no spans");
        }
        report
    };

    let mut group = c.benchmark_group("tracing_overhead_scaled_imdb");
    group.sample_size(10);
    group.bench_function("telemetry_only", |bench| {
        bench.iter(|| black_box(run(false)));
    });
    group.bench_function("telemetry_plus_tracer", |bench| {
        bench.iter(|| black_box(run(true)));
    });
    group.finish();

    // Same interleaved-median scheme as the telemetry guard above.
    let mut bare = Vec::new();
    let mut traced = Vec::new();
    for _ in 0..7 {
        let t0 = std::time::Instant::now();
        black_box(run(false));
        bare.push(t0.elapsed().as_secs_f64());
        let t1 = std::time::Instant::now();
        black_box(run(true));
        traced.push(t1.elapsed().as_secs_f64());
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let ratio = median(&mut traced) / median(&mut bare);
    println!(
        "tracing overhead: {:+.2}% (traced/untraced ratio {ratio:.4})",
        (ratio - 1.0) * 100.0
    );
    assert!(
        ratio < 1.05,
        "span tracing exceeds the 5% overhead budget: ratio {ratio:.4}"
    );
}

/// Data-parallel engine speedup (PR acceptance: ≥2× at 4 threads on a
/// machine that has them). On hosts with fewer than 4 cores the engine
/// still runs — the determinism suite proves the numbers are identical
/// — but there is no concurrency to measure, so the ratio is printed
/// without asserting.
fn bench_parallel_engine(c: &mut Criterion) {
    let cfg = eta_bench::scaled_config(Benchmark::Imdb);
    let task = scaled_task(Benchmark::Imdb);
    let run = |par: Parallelism| {
        let mut trainer = Trainer::new(cfg, TrainingStrategy::Baseline, SEED)
            .unwrap()
            .with_parallelism(par);
        trainer.run(&task, 2).unwrap()
    };

    let mut group = c.benchmark_group("training_step_parallel_scaled_imdb");
    group.sample_size(10);
    group.bench_function("serial", |bench| {
        bench.iter(|| black_box(run(Parallelism::serial())));
    });
    group.bench_function("threads4", |bench| {
        bench.iter(|| black_box(run(Parallelism::with_threads(4))));
    });
    group.finish();

    // Interleaved median comparison, same scheme as the telemetry
    // overhead guard: robust to drift and stray slow repetitions.
    let mut serial = Vec::new();
    let mut parallel = Vec::new();
    for _ in 0..5 {
        let t0 = std::time::Instant::now();
        black_box(run(Parallelism::serial()));
        serial.push(t0.elapsed().as_secs_f64());
        let t1 = std::time::Instant::now();
        black_box(run(Parallelism::with_threads(4)));
        parallel.push(t1.elapsed().as_secs_f64());
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let speedup = median(&mut serial) / median(&mut parallel);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("parallel engine speedup at 4 threads: {speedup:.2}x ({cores} cores available)");
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "data-parallel engine below the 2x target on a {cores}-core host: {speedup:.2}x"
        );
    } else {
        println!("2x speedup assertion skipped: needs >= 4 cores, host has {cores}");
    }
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_scaled_ptb");
    group.sample_size(20);
    let cfg = eta_bench::scaled_config(Benchmark::Ptb);
    let task = scaled_task(Benchmark::Ptb);
    let trainer = Trainer::new(cfg, TrainingStrategy::Baseline, SEED).unwrap();
    let batch = eta_lstm_core::Task::batch(&task, 0, 0);
    group.bench_function("forward_inference", |bench| {
        bench.iter(|| black_box(trainer.model().forward_inference(&batch.inputs).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_strategies,
    bench_telemetry_overhead,
    bench_tracing_overhead,
    bench_parallel_engine,
    bench_inference
);
criterion_main!(benches);
