//! Packed register-blocked GEMM vs the naive triple loop, plus the
//! per-shape roofline sweep.
//!
//! Three products come out of one run:
//!
//! 1. **Acceptance anchor** — the packed `nt` kernel must stay ≥2×
//!    faster than naive at 256×256×1024 in release, and both packed
//!    orientations must match the naive reference: bit-identical when
//!    the shape stays on the scalar path, ULP-bounded (the contract
//!    from `tests/simd_equivalence.rs`) when the AVX2/FMA kernels
//!    dispatch — FMA rounds once where scalar mul+add rounds twice,
//!    so bitwise equality is the wrong claim on the SIMD path.
//! 2. **Machine roofs** — peak compute GFLOP/s from an in-cache packed
//!    GEMM and memory bandwidth GB/s from a streaming triad, measured
//!    on the machine the sweep runs on rather than assumed.
//! 3. **Per-shape medians** — the three LSTM-cell GEMM orientations at
//!    the paper's batch-128/hidden-2048 cell dimensions
//!    (`eta_prof::roofline::cell_gemm_dims`), written to
//!    `BENCH_gemm.json` (the perf-gate input consumed by
//!    `eta-bench-track`) and folded into `results/roofline.json`
//!    (achieved vs roof GFLOP/s for every LN5–LN8 Table I shape).

use criterion::{criterion_group, criterion_main, Criterion};
use eta_prof::roofline::{self, KernelMeasurement, MachineRoofs};
use eta_tensor::{init, Matrix, PackedB};
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

/// The in-tree serde shim has no `json!` macro; build the report as an
/// explicit [`Value`] tree (insertion order is preserved, so the
/// checked-in artifact diffs stably).
fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Acceptance-anchor shape (the original PR gate).
const M: usize = 256;
const K: usize = 256;
const N: usize = 1024;

/// Samples per kernel in the interleaved sweeps: the naive reference
/// is sampled less (it is the slow side and only normalizes speedup);
/// medians discard stray slow runs either way.
const NAIVE_SAMPLES: usize = 3;
const PACKED_SAMPLES: usize = 5;

/// Maximum ULP distance tolerated on the SIMD dispatch path (mirrors
/// `tests/simd_equivalence.rs`); scalar-path shapes must be bitwise.
const ULP_BUDGET: u32 = 8;

/// Pre-flight equivalence gate, dispatch-aware: when the shape stays
/// on the scalar path the packed result must be bit-identical to
/// naive; when `simd::use_simd` says the AVX2/FMA kernels engage, each
/// element must be within [`ULP_BUDGET`] of naive or within the
/// `2k·ε·|A||B|` condition floor (`absref` is naive over `|A|`,`|B|`).
fn assert_gemm_matches(naive: &Matrix, packed: &Matrix, absref: &Matrix, k: usize, what: &str) {
    assert_eq!(naive.rows(), packed.rows(), "{what}: row mismatch");
    assert_eq!(naive.cols(), packed.cols(), "{what}: col mismatch");
    let simd = eta_tensor::simd::use_simd(naive.rows(), k, naive.cols());
    let tol = 2.0 * k as f32 * f32::EPSILON;
    for (i, ((&r, &g), &ab)) in naive
        .as_slice()
        .iter()
        .zip(packed.as_slice())
        .zip(absref.as_slice())
        .enumerate()
    {
        if !simd {
            assert_eq!(
                r.to_bits(),
                g.to_bits(),
                "{what}: element {i} diverged on the scalar path: {r} vs {g}"
            );
            continue;
        }
        let ulp_ok = g == r
            || (g.is_sign_positive() == r.is_sign_positive()
                && g.to_bits().abs_diff(r.to_bits()) <= ULP_BUDGET);
        assert!(
            ulp_ok || (g - r).abs() <= tol * ab,
            "{what}: element {i} beyond the SIMD ULP budget: packed={g:e} naive={r:e}"
        );
    }
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Peak compute roof: an in-cache packed `nt` GEMM (128³ — ~200 KB of
/// operands, resident in L2) timed in batches; the best batch
/// approximates the kernel's compute ceiling.
fn measure_peak_gflops() -> f64 {
    const D: usize = 128;
    const CALLS_PER_BATCH: usize = 8;
    let a = init::uniform(D, D, -1.0, 1.0, 21);
    let b = init::uniform(D, D, -1.0, 1.0, 22);
    let pb = PackedB::from_nt(&b);
    // Warm the caches and the branch predictors.
    black_box(a.matmul_nt_packed(&pb).unwrap());
    let flops = (2 * D * D * D * CALLS_PER_BATCH) as f64;
    let mut best = f64::INFINITY;
    for _ in 0..10 {
        let t0 = Instant::now();
        for _ in 0..CALLS_PER_BATCH {
            black_box(a.matmul_nt_packed(&pb).unwrap());
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    flops / best / 1e9
}

/// Memory-bandwidth roof: a streaming triad `a[i] = b[i] + s·c[i]`
/// over arrays far larger than last-level cache. Bytes are counted
/// STREAM-style (two reads + one write per element, no write-allocate
/// credit), so the roof is conservative.
fn measure_mem_bw_gbps() -> f64 {
    const LEN: usize = 1 << 24; // 16.7M f32 per array, 64 MB each
    let b = vec![1.5f32; LEN];
    let c = vec![2.5f32; LEN];
    let mut a = vec![0.0f32; LEN];
    let bytes = (3 * LEN * 4) as f64;
    let mut best = f64::INFINITY;
    for pass in 0..5 {
        let s = 1.0 + pass as f32; // defeat pass-to-pass folding
        let t0 = Instant::now();
        for ((ai, bi), ci) in a.iter_mut().zip(&b).zip(&c) {
            *ai = *bi + s * *ci;
        }
        black_box(&mut a);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    bytes / best / 1e9
}

/// One cell-dimension orientation, measured interleaved (each rep
/// times naive then packed back to back so drift hits both sides).
fn measure_orientation(orientation: &str, m: usize, k: usize, n: usize) -> KernelMeasurement {
    let mut naive = Vec::new();
    let mut packed = Vec::new();
    match orientation {
        "nt" => {
            let a = init::uniform(m, k, -1.0, 1.0, 31);
            let b = init::uniform(n, k, -1.0, 1.0, 32);
            let pb = PackedB::from_nt(&b);
            for rep in 0..PACKED_SAMPLES {
                if rep < NAIVE_SAMPLES {
                    let t0 = Instant::now();
                    black_box(a.matmul_nt_naive(&b).unwrap());
                    naive.push(t0.elapsed().as_secs_f64());
                }
                let t1 = Instant::now();
                black_box(a.matmul_nt_packed(&pb).unwrap());
                packed.push(t1.elapsed().as_secs_f64());
            }
        }
        "nn" => {
            let a = init::uniform(m, k, -1.0, 1.0, 33);
            let b = init::uniform(k, n, -1.0, 1.0, 34);
            let pb = PackedB::from_nn(&b);
            for rep in 0..PACKED_SAMPLES {
                if rep < NAIVE_SAMPLES {
                    let t0 = Instant::now();
                    black_box(a.matmul_nn_naive(&b).unwrap());
                    naive.push(t0.elapsed().as_secs_f64());
                }
                let t1 = Instant::now();
                black_box(a.matmul_nn_packed(&pb).unwrap());
                packed.push(t1.elapsed().as_secs_f64());
            }
        }
        "tn" => {
            // `selfᵀ · rhs`: self is [k, m], rhs is [k, n].
            let a = init::uniform(k, m, -1.0, 1.0, 35);
            let b = init::uniform(k, n, -1.0, 1.0, 36);
            let pb = PackedB::from_nn(&b);
            for rep in 0..PACKED_SAMPLES {
                if rep < NAIVE_SAMPLES {
                    let t0 = Instant::now();
                    black_box(a.matmul_tn_naive(&b).unwrap());
                    naive.push(t0.elapsed().as_secs_f64());
                }
                let t1 = Instant::now();
                black_box(a.matmul_tn_packed(&pb).unwrap());
                packed.push(t1.elapsed().as_secs_f64());
            }
        }
        other => panic!("unknown orientation {other}"),
    }
    KernelMeasurement {
        orientation: orientation.to_string(),
        m,
        k,
        n,
        naive_seconds: median(&mut naive),
        packed_seconds: median(&mut packed),
    }
}

fn shape_entry(label: &str, km: &KernelMeasurement) -> Value {
    let gflops = if km.packed_seconds > 0.0 {
        km.flops() as f64 / km.packed_seconds / 1e9
    } else {
        0.0
    };
    let speedup = if km.packed_seconds > 0.0 {
        km.naive_seconds / km.packed_seconds
    } else {
        0.0
    };
    map(vec![
        ("label", Value::Str(label.into())),
        ("orientation", Value::Str(km.orientation.clone())),
        ("m", Value::UInt(km.m as u64)),
        ("k", Value::UInt(km.k as u64)),
        ("n", Value::UInt(km.n as u64)),
        ("naive_seconds", Value::Float(km.naive_seconds)),
        ("packed_seconds", Value::Float(km.packed_seconds)),
        ("gflops", Value::Float(gflops)),
        ("speedup", Value::Float(speedup)),
    ])
}

fn bench_gemm_packed_vs_naive(c: &mut Criterion) {
    let a = init::uniform(M, K, -1.0, 1.0, 11);
    let b_nt = init::uniform(N, K, -1.0, 1.0, 12);
    let b_nn = init::uniform(K, N, -1.0, 1.0, 13);
    let pb_nt = PackedB::from_nt(&b_nt);
    let pb_nn = PackedB::from_nn(&b_nn);

    // Re-prove the numerical contract on the acceptance shape before
    // timing: bitwise on the scalar path, ULP-bounded under SIMD.
    assert_gemm_matches(
        &a.matmul_nt_naive(&b_nt).unwrap(),
        &a.matmul_nt_packed(&pb_nt).unwrap(),
        &a.map(f32::abs)
            .matmul_nt_naive(&b_nt.map(f32::abs))
            .unwrap(),
        K,
        "nt",
    );
    assert_gemm_matches(
        &a.matmul_nn_naive(&b_nn).unwrap(),
        &a.matmul_nn_packed(&pb_nn).unwrap(),
        &a.map(f32::abs)
            .matmul_nn_naive(&b_nn.map(f32::abs))
            .unwrap(),
        K,
        "nn",
    );

    let mut group = c.benchmark_group("gemm_256x256x1024");
    group.sample_size(10);
    group.bench_function("nt_naive", |bench| {
        bench.iter(|| black_box(a.matmul_nt_naive(&b_nt).unwrap()));
    });
    group.bench_function("nt_packed", |bench| {
        bench.iter(|| black_box(a.matmul_nt_packed(&pb_nt).unwrap()));
    });
    group.bench_function("nt_packed_including_pack", |bench| {
        // What an uncached caller pays: pack the panels every call.
        bench.iter(|| {
            let pb = PackedB::from_nt(&b_nt);
            black_box(a.matmul_nt_packed(&pb).unwrap())
        });
    });
    group.bench_function("nn_naive", |bench| {
        bench.iter(|| black_box(a.matmul_nn_naive(&b_nn).unwrap()));
    });
    group.bench_function("nn_packed", |bench| {
        bench.iter(|| black_box(a.matmul_nn_packed(&pb_nn).unwrap()));
    });
    group.finish();

    // Machine roofs first — they bound every roofline entry below.
    let machine = MachineRoofs {
        peak_gflops: measure_peak_gflops(),
        mem_bw_gbps: measure_mem_bw_gbps(),
    };
    println!(
        "machine roofs: peak {:.2} GFLOP/s, bandwidth {:.2} GB/s",
        machine.peak_gflops, machine.mem_bw_gbps
    );

    // Acceptance anchor, interleaved medians.
    let anchor = measure_orientation("nt", M, K, N);
    let speedup = anchor.naive_seconds / anchor.packed_seconds;
    println!(
        "gemm nt {M}x{K}x{N}: naive {:.2} GFLOP/s, packed {:.2} GFLOP/s, speedup {speedup:.2}x",
        anchor.flops() as f64 / anchor.naive_seconds / 1e9,
        anchor.flops() as f64 / anchor.packed_seconds / 1e9,
    );

    // Cell-dimension sweep: the three GEMM orientations one LSTM cell
    // executes at the paper's batch/hidden. These dims depend only on
    // batch and hidden width, so the measurements are shared by every
    // LN5–LN8 shape entry in the roofline report.
    let cell_kernels: Vec<KernelMeasurement> =
        roofline::cell_gemm_dims(roofline::LN_BATCH, roofline::LN_HIDDEN)
            .into_iter()
            .map(|(orient, m, k, n)| {
                let km = measure_orientation(orient, m, k, n);
                println!(
                    "cell gemm {orient} {m}x{k}x{n}: naive {:.4}s, packed {:.4}s ({:.2} GFLOP/s)",
                    km.naive_seconds,
                    km.packed_seconds,
                    km.flops() as f64 / km.packed_seconds / 1e9
                );
                km
            })
            .collect();

    // BENCH_gemm.json — the perf-gate input. One entry per tracked
    // shape (anchor + the three cell orientations); `eta-bench-track`
    // keys baselines off `label`.
    let mut shapes = vec![shape_entry(&format!("anchor nt m{M} k{K} n{N}"), &anchor)];
    for km in &cell_kernels {
        shapes.push(shape_entry(
            &format!("{} m{} k{} n{}", km.orientation, km.m, km.k, km.n),
            km,
        ));
    }
    let report = map(vec![
        ("bench", Value::Str("gemm_packed".into())),
        (
            "machine",
            map(vec![
                ("peak_gflops", Value::Float(machine.peak_gflops)),
                ("mem_bw_gbps", Value::Float(machine.mem_bw_gbps)),
            ]),
        ),
        (
            "samples",
            map(vec![
                ("naive", Value::UInt(NAIVE_SAMPLES as u64)),
                ("packed", Value::UInt(PACKED_SAMPLES as u64)),
            ]),
        ),
        ("shapes", Value::Seq(shapes)),
    ]);
    let bench_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
    std::fs::write(bench_path, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    println!("wrote {bench_path}");

    // results/roofline.json — achieved vs roof for the cell kernels
    // and every LN5–LN8 training-step shape.
    let roofline_report = roofline::build_report(machine, &cell_kernels);
    print!("\n{}", roofline_report.render());
    let results_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(results_dir).unwrap();
    let roofline_path = format!("{results_dir}/roofline.json");
    std::fs::write(
        &roofline_path,
        serde_json::to_string_pretty(&roofline_report).unwrap(),
    )
    .unwrap();
    println!("wrote {roofline_path}");

    assert!(
        speedup >= 2.0,
        "packed nt GEMM below the 2x acceptance target at {M}x{K}x{N}: {speedup:.2}x"
    );

    // The tn orientation (BPTT weight gradients) used to crawl at 1.3×
    // over naive because it reused the nn panel scheme against a
    // column-strided A; the blocked-transpose + SIMD route must hold
    // ≥3× or the fix has regressed.
    let tn = cell_kernels
        .iter()
        .find(|km| km.orientation == "tn")
        .expect("cell sweep includes tn");
    let tn_speedup = tn.naive_seconds / tn.packed_seconds;
    assert!(
        tn_speedup >= 3.0,
        "packed tn GEMM below the 3x target at {}x{}x{}: {tn_speedup:.2}x",
        tn.m,
        tn.k,
        tn.n
    );
}

criterion_group!(benches, bench_gemm_packed_vs_naive);
criterion_main!(benches);
