//! Packed register-blocked GEMM vs the naive triple loop (PR
//! acceptance: the packed `nt` kernel must be ≥2× faster than naive at
//! 256×256×1024 in release). The naive loops are the repo's bit-exact
//! reference; the packed kernels reorder *memory traffic* (panel
//! packing, cache blocking, 4×8 register tiles) but never the
//! arithmetic — one accumulator per element, ascending-k — so the
//! speedup comes for free numerically. This bench re-checks the bit
//! identity before timing, then writes the measured medians to
//! `BENCH_gemm.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use eta_tensor::{init, Matrix, PackedB};
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

/// The in-tree serde shim has no `json!` macro; build the report as an
/// explicit [`Value`] tree (insertion order is preserved, so the
/// checked-in artifact diffs stably).
fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

const M: usize = 256;
const K: usize = 256;
const N: usize = 1024;

/// The acceptance shape's operands: `a · b_ntᵀ` (the LSTM forward
/// orientation, `x·Wᵀ`) and `a · b_nn` (the backward data-gradient
/// orientation, `δ·W`).
fn operands() -> (Matrix, Matrix, Matrix) {
    let a = init::uniform(M, K, -1.0, 1.0, 11);
    let b_nt = init::uniform(N, K, -1.0, 1.0, 12);
    let b_nn = init::uniform(K, N, -1.0, 1.0, 13);
    (a, b_nt, b_nn)
}

fn assert_bits_equal(lhs: &Matrix, rhs: &Matrix, what: &str) {
    assert_eq!(lhs.rows(), rhs.rows(), "{what}: row mismatch");
    assert_eq!(lhs.cols(), rhs.cols(), "{what}: col mismatch");
    for (i, (a, b)) in lhs.as_slice().iter().zip(rhs.as_slice()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: element {i} diverged: {a} vs {b}"
        );
    }
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn bench_gemm_packed_vs_naive(c: &mut Criterion) {
    let (a, b_nt, b_nn) = operands();
    let pb_nt = PackedB::from_nt(&b_nt);
    let pb_nn = PackedB::from_nn(&b_nn);

    // The whole point of the packed path is that it changes nothing
    // numerically — re-prove it on the acceptance shape before timing.
    assert_bits_equal(
        &a.matmul_nt_naive(&b_nt).unwrap(),
        &a.matmul_nt_packed(&pb_nt).unwrap(),
        "nt",
    );
    assert_bits_equal(
        &a.matmul_nn_naive(&b_nn).unwrap(),
        &a.matmul_nn_packed(&pb_nn).unwrap(),
        "nn",
    );

    let mut group = c.benchmark_group("gemm_256x256x1024");
    group.sample_size(10);
    group.bench_function("nt_naive", |bench| {
        bench.iter(|| black_box(a.matmul_nt_naive(&b_nt).unwrap()));
    });
    group.bench_function("nt_packed", |bench| {
        bench.iter(|| black_box(a.matmul_nt_packed(&pb_nt).unwrap()));
    });
    group.bench_function("nt_packed_including_pack", |bench| {
        // What an uncached caller pays: pack the panels every call.
        bench.iter(|| {
            let pb = PackedB::from_nt(&b_nt);
            black_box(a.matmul_nt_packed(&pb).unwrap())
        });
    });
    group.bench_function("nn_naive", |bench| {
        bench.iter(|| black_box(a.matmul_nn_naive(&b_nn).unwrap()));
    });
    group.bench_function("nn_packed", |bench| {
        bench.iter(|| black_box(a.matmul_nn_packed(&pb_nn).unwrap()));
    });
    group.finish();

    // Interleaved-median comparison for the asserted acceptance number
    // (robust to drift: each repetition times both variants back to
    // back, and the median discards stray slow runs).
    let mut naive = Vec::new();
    let mut packed = Vec::new();
    let mut packed_with_pack = Vec::new();
    for _ in 0..7 {
        let t0 = Instant::now();
        black_box(a.matmul_nt_naive(&b_nt).unwrap());
        naive.push(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        black_box(a.matmul_nt_packed(&pb_nt).unwrap());
        packed.push(t1.elapsed().as_secs_f64());
        let t2 = Instant::now();
        let pb = PackedB::from_nt(&b_nt);
        black_box(a.matmul_nt_packed(&pb).unwrap());
        packed_with_pack.push(t2.elapsed().as_secs_f64());
    }
    let naive_s = median(&mut naive);
    let packed_s = median(&mut packed);
    let packed_pack_s = median(&mut packed_with_pack);
    let speedup = naive_s / packed_s;
    let flops = (2 * M * K * N) as f64;
    println!(
        "gemm nt {M}x{K}x{N}: naive {:.2} GFLOP/s, packed {:.2} GFLOP/s, speedup {speedup:.2}x",
        flops / naive_s / 1e9,
        flops / packed_s / 1e9,
    );

    let report = map(vec![
        ("bench", Value::Str("gemm_packed_vs_naive".into())),
        (
            "shape",
            map(vec![
                ("m", Value::UInt(M as u64)),
                ("k", Value::UInt(K as u64)),
                ("n", Value::UInt(N as u64)),
            ]),
        ),
        ("orientation", Value::Str("nt".into())),
        ("naive_median_seconds", Value::Float(naive_s)),
        ("packed_median_seconds", Value::Float(packed_s)),
        (
            "packed_including_pack_median_seconds",
            Value::Float(packed_pack_s),
        ),
        ("speedup", Value::Float(speedup)),
        ("naive_gflops", Value::Float(flops / naive_s / 1e9)),
        ("packed_gflops", Value::Float(flops / packed_s / 1e9)),
        ("samples", Value::UInt(7)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    println!("wrote {path}");

    assert!(
        speedup >= 2.0,
        "packed nt GEMM below the 2x acceptance target at {M}x{K}x{N}: {speedup:.2}x"
    );
}

criterion_group!(benches, bench_gemm_packed_vs_naive);
criterion_main!(benches);
