//! Training-step cost of the zero-alloc workspace + cached weight
//! panels (PR satellite): `train_step` (the compatibility wrapper —
//! fresh workspace every step, panels re-packed inside every sequence)
//! vs `train_step_ws` with a reused [`Workspace`] and a [`ModelPanels`]
//! packed once. Both paths are bit-identical (the determinism suite
//! proves it); this bench measures what the reuse buys and writes the
//! medians to `BENCH_train_step.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use eta_bench::{scaled_config, scaled_task, SEED};
use eta_lstm_core::layer::Instruments;
use eta_lstm_core::model::StepPlan;
use eta_lstm_core::{LstmModel, ModelPanels, Task, Workspace};
use eta_workloads::Benchmark;
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

/// The in-tree serde shim has no `json!` macro; build the report as an
/// explicit [`Value`] tree (insertion order is preserved, so the
/// checked-in artifact diffs stably).
fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn bench_workspace_step(c: &mut Criterion) {
    let cfg = scaled_config(Benchmark::Imdb);
    let task = scaled_task(Benchmark::Imdb);
    let model = LstmModel::new(&cfg, SEED);
    let batch = Task::batch(&task, 0, 0);
    let plan = StepPlan::baseline();
    let instruments = Instruments::new();

    let step_fresh = || {
        model
            .train_step(&batch.inputs, &batch.targets, &plan, &instruments)
            .unwrap()
    };

    let panels = ModelPanels::pack(&model);
    let mut ws = Workspace::new();

    let mut group = c.benchmark_group("train_step_scaled_imdb");
    group.sample_size(10);
    group.bench_function("fresh_workspace_per_step", |bench| {
        bench.iter(|| black_box(step_fresh()));
    });
    group.bench_function("reused_workspace_cached_panels", |bench| {
        bench.iter(|| {
            black_box(
                model
                    .train_step_ws(
                        &batch.inputs,
                        &batch.targets,
                        &plan,
                        &instruments,
                        Some(&panels),
                        &mut ws,
                    )
                    .unwrap(),
            )
        });
    });
    group.finish();

    // Interleaved medians for the reported number.
    let mut fresh = Vec::new();
    let mut reused = Vec::new();
    for _ in 0..5 {
        let t0 = Instant::now();
        black_box(step_fresh());
        fresh.push(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        black_box(
            model
                .train_step_ws(
                    &batch.inputs,
                    &batch.targets,
                    &plan,
                    &instruments,
                    Some(&panels),
                    &mut ws,
                )
                .unwrap(),
        );
        reused.push(t1.elapsed().as_secs_f64());
    }
    let fresh_s = median(&mut fresh);
    let reused_s = median(&mut reused);
    let speedup = fresh_s / reused_s;
    println!(
        "train_step scaled IMDB: fresh {fresh_s:.4}s, reused+panels {reused_s:.4}s \
         ({speedup:.2}x), workspace high water {} bytes",
        ws.high_water_bytes()
    );

    let report = map(vec![
        ("bench", Value::Str("train_step_workspace".into())),
        ("workload", Value::Str("scaled_imdb".into())),
        ("fresh_workspace_median_seconds", Value::Float(fresh_s)),
        (
            "reused_workspace_cached_panels_median_seconds",
            Value::Float(reused_s),
        ),
        ("speedup", Value::Float(speedup)),
        (
            "workspace_high_water_bytes",
            Value::UInt(ws.high_water_bytes()),
        ),
        ("samples", Value::UInt(5)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train_step.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    println!("wrote {path}");

    // Reuse must never be a pessimization (it elides work, adds none).
    assert!(
        speedup >= 0.95,
        "workspace/panel reuse slowed the step down: {speedup:.2}x"
    );
}

criterion_group!(benches, bench_workspace_step);
criterion_main!(benches);
