//! Plain-text table rendering for the figure harnesses.

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use eta_bench::Table;
///
/// let mut t = Table::new("Demo", &["name", "value"]);
/// t.row(&["alpha".to_string(), "1.0".to_string()]);
/// let s = t.render();
/// assert!(s.contains("alpha"));
/// assert!(s.contains("value"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with the given number of decimals.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a byte count as GB (decimal).
pub fn gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e9)
}

/// Formats a ratio as a percentage.
pub fn pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(&["x".into(), "1".into()]);
        t.row(&["yyyy".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("a   "), "{s}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_row_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(gb(2_500_000_000), "2.50");
        assert_eq!(pct(0.575), "57.5%");
    }
}
