//! # eta-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! η-LSTM paper's evaluation (see DESIGN.md §4 for the experiment
//! index). One binary per figure/table lives in `src/bin/`; Criterion
//! micro-benchmarks live in `benches/`.
//!
//! The harness pipeline (mirroring the paper's methodology on our
//! simulated substrate):
//!
//! 1. **Measure** the software optimizations' effects at executable
//!    scale: small instrumented training runs give the MS1 P1-stream
//!    density; the MS2 skip fraction is computed exactly from the Eq. 4
//!    predictor on the *paper-scale* graph (the keep/skip decision is
//!    scale-invariant in α and the loss).
//! 2. **Scale** to Table I shapes through the `eta-memsim` closed
//!    forms and the `eta-gpu` / `eta-accel` machine models.
//! 3. **Print** paper-vs-measured rows for every figure/table.

use eta_gpu::{GpuModel, GpuSpec};
use eta_lstm_core::ms2::{self, GradPredictor, Ms2Config};
use eta_lstm_core::{Batch, LossKind, Task};
use eta_lstm_core::{LstmConfig, Parallelism, Trainer, TrainingStrategy};
use eta_memsim::model::OptEffects;
use eta_workloads::{Benchmark, MarkovChain, MarkovLmTask, SyntheticTask, TrajectoryTask};

pub mod table;

pub use table::Table;

/// Environment variable naming the worker-thread count
/// (`run_all --threads N` exports it for every child binary).
pub use eta_tensor::parallel::THREADS_ENV;

/// Default training seed for every harness run (reproducibility).
pub const SEED: u64 = 42;

/// The execution policy harness binaries train under: thread count from
/// [`THREADS_ENV`] when set, otherwise the hardware's available
/// parallelism. The microbatch shard count is fixed (see
/// `eta_lstm_core::parallel::DEFAULT_SHARDS`) independent of the thread
/// count, so every figure/table prints identical numbers at any
/// `--threads N` — threads only change wall-clock time.
pub fn engine_from_env() -> Parallelism {
    Parallelism::from_env()
}

/// Environment variable naming the directory where harness binaries
/// write their JSONL telemetry streams (`run_all --telemetry <dir>`
/// sets it for every child).
pub const TELEMETRY_DIR_ENV: &str = "ETA_TELEMETRY_DIR";

/// Opens `binary`'s JSONL telemetry stream at `<dir>/<binary>.jsonl`.
///
/// Returns `None` (telemetry stays off) if the directory cannot be
/// created or the file cannot be opened — the harness output is the
/// product; observability must never fail a run.
pub fn telemetry_to(dir: &std::path::Path, binary: &str) -> Option<eta_telemetry::Telemetry> {
    std::fs::create_dir_all(dir).ok()?;
    let manifest =
        eta_telemetry::RunManifest::capture(binary, eta_telemetry::config_hash(&SEED), SEED);
    eta_telemetry::Telemetry::with_jsonl(manifest, dir.join(format!("{binary}.jsonl"))).ok()
}

/// Builds this binary's telemetry handle when [`TELEMETRY_DIR_ENV`] is
/// set; `None` (every hook a no-op) otherwise.
pub fn telemetry_from_env(binary: &str) -> Option<eta_telemetry::Telemetry> {
    let dir = std::env::var(TELEMETRY_DIR_ENV).ok()?;
    telemetry_to(std::path::Path::new(&dir), binary)
}

/// Environment variable naming the directory where harness binaries
/// write Chrome-trace + flamegraph exports (`run_all --trace <dir>`
/// sets it for every child).
pub const TRACE_DIR_ENV: &str = "ETA_TRACE_DIR";

/// Attaches a span tracer to `telemetry`, exporting to
/// `<dir>/<binary>.trace.json` (Chrome/Perfetto) and
/// `<dir>/<binary>.folded.txt` (flamegraph) when the returned session
/// is finished or dropped.
///
/// Returns `None` when `telemetry` is off — spans have nowhere to come
/// from without a telemetry handle, and the harness output is the
/// product; observability must never fail a run.
pub fn trace_to(
    dir: &std::path::Path,
    binary: &str,
    telemetry: Option<&eta_telemetry::Telemetry>,
) -> Option<eta_prof::TraceSession> {
    let telemetry = telemetry?;
    Some(eta_prof::TraceSession::start(
        telemetry.clone(),
        dir,
        binary,
    ))
}

/// Starts a trace session when [`TRACE_DIR_ENV`] is set; `None` (no
/// tracer attached, spans cost one atomic load) otherwise.
pub fn trace_from_env(
    binary: &str,
    telemetry: Option<&eta_telemetry::Telemetry>,
) -> Option<eta_prof::TraceSession> {
    let dir = std::env::var(TRACE_DIR_ENV).ok()?;
    trace_to(std::path::Path::new(&dir), binary, telemetry)
}

/// The full observability bundle from the environment: a telemetry
/// handle when [`TELEMETRY_DIR_ENV`] is set, a trace session when
/// [`TRACE_DIR_ENV`] is set. `--trace` alone still traces — spans need
/// a telemetry handle, so an in-memory one (no JSONL stream) is
/// constructed for the tracer to ride on.
///
/// Keep the returned session alive for the whole run; its drop/finish
/// writes the trace artifacts.
pub fn instrumentation_from_env(
    binary: &str,
) -> (
    Option<eta_telemetry::Telemetry>,
    Option<eta_prof::TraceSession>,
) {
    let mut telemetry = telemetry_from_env(binary);
    if telemetry.is_none() && std::env::var(TRACE_DIR_ENV).is_ok() {
        let manifest =
            eta_telemetry::RunManifest::capture(binary, eta_telemetry::config_hash(&SEED), SEED);
        telemetry = Some(eta_telemetry::Telemetry::new(manifest));
    }
    let trace = trace_from_env(binary, telemetry.as_ref());
    (telemetry, trace)
}

/// Measured/derived optimization effects for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BenchEffects {
    /// MS1 post-pruning P1 density, measured from a scaled training
    /// run.
    pub p1_density: f64,
    /// MS2 skip fraction, computed exactly on the paper-scale graph.
    pub skip_fraction: f64,
    /// MS3 checkpoint interval `k` (tape keeps every k-th cell record).
    pub ms3_k: usize,
    /// MS3 storage width in bytes per element (2 = bf16/f16).
    pub ms3_bytes_per_element: u64,
}

impl BenchEffects {
    /// The [`OptEffects`] for a given strategy.
    pub fn for_strategy(&self, strategy: TrainingStrategy) -> OptEffects {
        match strategy {
            TrainingStrategy::Baseline => OptEffects::baseline(),
            TrainingStrategy::Ms1 => OptEffects::ms1(self.p1_density),
            TrainingStrategy::Ms2 => OptEffects::ms2(self.skip_fraction),
            TrainingStrategy::CombinedMs => {
                OptEffects::combined(self.p1_density, self.skip_fraction)
            }
            TrainingStrategy::Ms3 => OptEffects::ms3(self.ms3_k, self.ms3_bytes_per_element),
            TrainingStrategy::CombinedAll => {
                OptEffects::combined(self.p1_density, self.skip_fraction)
                    .with_ms3(self.ms3_k, self.ms3_bytes_per_element)
            }
        }
    }
}

/// A scaled-down but structurally faithful training configuration for a
/// benchmark: the paper's layer count and loss structure with reduced
/// hidden size and sequence length so real training runs on a CPU.
pub fn scaled_config(benchmark: Benchmark) -> LstmConfig {
    let spec = benchmark.spec();
    LstmConfig::builder()
        .input_size(24)
        .hidden_size(24)
        .layers(spec.layers.min(3))
        .seq_len(spec.seq_len.min(24))
        .batch_size(4)
        .output_size(scaled_output(benchmark))
        .build()
        .expect("scaled config is valid")
}

fn scaled_output(benchmark: Benchmark) -> usize {
    use eta_workloads::TaskCategory::*;
    match benchmark.spec().category {
        QuestionClassification => 10,
        LanguageModeling | MachineTranslation => 12,
        SentimentAnalysis => 2,
        AutonomousDriving => 2,
        QuestionAnswering => 8,
    }
}

/// A scaled stand-in task for one benchmark: synthetic classification
/// for the classification benchmarks, a Markov-chain LM (with a real
/// entropy floor) for the language benchmarks, and constant-velocity
/// tracking for the driving benchmark.
#[derive(Debug, Clone)]
pub enum ScaledTask {
    /// Classification benchmarks (TREC-10, IMDB, bAbI).
    Synthetic(SyntheticTask),
    /// Language benchmarks (PTB, WMT).
    Markov(MarkovLmTask),
    /// The WAYMO tracking benchmark.
    Trajectory(TrajectoryTask),
}

impl ScaledTask {
    /// Overrides the batch size.
    pub fn with_batch_size(self, b: usize) -> Self {
        match self {
            ScaledTask::Synthetic(t) => ScaledTask::Synthetic(t.with_batch_size(b)),
            ScaledTask::Markov(t) => ScaledTask::Markov(t.with_batch_size(b)),
            ScaledTask::Trajectory(t) => ScaledTask::Trajectory(t.with_batch_size(b)),
        }
    }

    /// Overrides the batches per epoch.
    pub fn with_batches_per_epoch(self, n: usize) -> Self {
        match self {
            ScaledTask::Synthetic(t) => ScaledTask::Synthetic(t.with_batches_per_epoch(n)),
            ScaledTask::Markov(t) => ScaledTask::Markov(t.with_batches_per_epoch(n)),
            ScaledTask::Trajectory(t) => ScaledTask::Trajectory(t.with_batches_per_epoch(n)),
        }
    }
}

impl Task for ScaledTask {
    fn batch(&self, epoch: usize, index: usize) -> Batch {
        match self {
            ScaledTask::Synthetic(t) => t.batch(epoch, index),
            ScaledTask::Markov(t) => t.batch(epoch, index),
            ScaledTask::Trajectory(t) => t.batch(epoch, index),
        }
    }

    fn batches_per_epoch(&self) -> usize {
        match self {
            ScaledTask::Synthetic(t) => t.batches_per_epoch(),
            ScaledTask::Markov(t) => t.batches_per_epoch(),
            ScaledTask::Trajectory(t) => t.batches_per_epoch(),
        }
    }

    fn loss_kind(&self) -> LossKind {
        match self {
            ScaledTask::Synthetic(t) => t.loss_kind(),
            ScaledTask::Markov(t) => t.loss_kind(),
            ScaledTask::Trajectory(t) => t.loss_kind(),
        }
    }
}

/// Observation-noise level of the scaled tracking task.
pub const TRAJECTORY_NOISE: f32 = 0.15;

/// The structured task standing in for a benchmark at the scaled config.
pub fn scaled_task(benchmark: Benchmark) -> ScaledTask {
    let cfg = scaled_config(benchmark);
    use eta_workloads::TaskCategory::*;
    let task = match benchmark.spec().category {
        QuestionClassification | SentimentAnalysis | QuestionAnswering => ScaledTask::Synthetic(
            SyntheticTask::classification(cfg.input_size, cfg.output_size, cfg.seq_len, SEED),
        ),
        LanguageModeling | MachineTranslation => ScaledTask::Markov(MarkovLmTask::new(
            MarkovChain::peaked(cfg.output_size, 0.8, SEED),
            cfg.input_size,
            cfg.seq_len,
            SEED,
        )),
        AutonomousDriving => ScaledTask::Trajectory(TrajectoryTask::new(
            cfg.input_size,
            cfg.seq_len,
            TRAJECTORY_NOISE,
            SEED,
        )),
    };
    task.with_batch_size(cfg.batch_size)
        .with_batches_per_epoch(4)
}

/// Measures the MS1 P1 density of a benchmark by running a short,
/// scaled, instrumented MS1 training run.
pub fn measure_p1_density(benchmark: Benchmark) -> f64 {
    let cfg = scaled_config(benchmark);
    let task = scaled_task(benchmark);
    let mut trainer = Trainer::new(cfg, TrainingStrategy::Ms1, SEED)
        .expect("valid scaled config")
        .with_parallelism(engine_from_env());
    let report = trainer.run(&task, 2).expect("scaled training runs");
    report.mean_p1_density()
}

/// Computes the MS2 skip fraction of a benchmark on its *paper-scale*
/// graph. The keep/skip decision of Eq. 4 under a relative threshold is
/// independent of α and the loss value, so no training is needed.
pub fn skip_fraction(benchmark: Benchmark) -> f64 {
    let spec = benchmark.spec();
    let beta = GradPredictor::beta_for(spec.loss_kind);
    let predictor = GradPredictor { alpha: 1.0, beta };
    let plan = ms2::plan_skips(
        &predictor,
        1.0,
        spec.layers,
        spec.seq_len,
        &Ms2Config::default(),
    );
    plan.skip_fraction()
}

/// Measures/derives the software optimizations' effects for a
/// benchmark. MS1/MS2 effects are measured; the MS3 knobs come from the
/// repo-default [`StrategyParams`](eta_lstm_core::strategy::StrategyParams)
/// (k = 4, bf16 storage).
pub fn bench_effects(benchmark: Benchmark) -> BenchEffects {
    let ms3 = eta_lstm_core::strategy::StrategyParams::default().ms3;
    BenchEffects {
        p1_density: measure_p1_density(benchmark),
        skip_fraction: skip_fraction(benchmark),
        ms3_k: ms3.k,
        ms3_bytes_per_element: ms3.precision.bytes_per_element(),
    }
}

/// The baseline GPU (the paper compares against the V100).
pub fn baseline_gpu() -> GpuModel {
    GpuModel::new(GpuSpec::v100())
}

/// Geometric mean of a slice (the conventional average for speedups).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_configs_are_valid_and_small() {
        for b in Benchmark::ALL {
            let cfg = scaled_config(b);
            assert!(cfg.hidden_size <= 64);
            assert!(cfg.seq_len <= 32);
            assert!(cfg.layers >= 2);
        }
    }

    #[test]
    fn skip_fractions_reflect_loss_structure() {
        // Single-loss benchmarks with long layers skip up to the
        // convergence-guard cap (gradient vanishing truncates early
        // timesteps)…
        let imdb = skip_fraction(Benchmark::Imdb);
        assert!(
            (imdb - eta_lstm_core::ms2::MAX_SKIP_FRACTION).abs() < 1e-9,
            "IMDB skip fraction {imdb} should hit the cap"
        );
        // …while per-timestamp models only shed their tail.
        let wmt = skip_fraction(Benchmark::Wmt);
        assert!(wmt < 0.3, "WMT skip fraction {wmt}");
        // Short single-loss layers skip moderately.
        let trec = skip_fraction(Benchmark::Trec10);
        assert!((0.1..0.7).contains(&trec), "TREC skip fraction {trec}");
    }

    #[test]
    fn measured_p1_density_shows_compression_opportunity() {
        let d = measure_p1_density(Benchmark::Trec10);
        assert!(
            (0.05..0.75).contains(&d),
            "P1 density {d} out of the Fig. 6 neighbourhood (~0.35)"
        );
    }

    #[test]
    fn effects_map_to_strategies() {
        let e = BenchEffects {
            p1_density: 0.3,
            skip_fraction: 0.5,
            ms3_k: 4,
            ms3_bytes_per_element: 2,
        };
        assert!(!e.for_strategy(TrainingStrategy::Baseline).ms1);
        assert!(e.for_strategy(TrainingStrategy::Ms1).ms1);
        let c = e.for_strategy(TrainingStrategy::CombinedMs);
        assert!(c.ms1 && c.ms2);
        assert_eq!(c.p1_density, 0.3);
        assert_eq!(c.skip_fraction, 0.5);
        assert!(!c.ms3);
        let m = e.for_strategy(TrainingStrategy::Ms3);
        assert!(m.ms3 && !m.ms1 && !m.ms2);
        assert_eq!(m.ms3_k, 4);
        let all = e.for_strategy(TrainingStrategy::CombinedAll);
        assert!(all.ms1 && all.ms2 && all.ms3);
        assert_eq!(all.ms3_bytes_per_element, 2);
    }

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
