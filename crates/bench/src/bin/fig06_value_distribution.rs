//! Figure 6 — cumulative absolute-value distribution of the FW
//! intermediate variables vs the BP-EW-P1 results, at several training
//! epochs.
//!
//! Paper headline: only ≈25 % of raw FW intermediates fall below 0.1 in
//! magnitude, but ≈65 % of the BP-EW-P1 products do — the compression
//! opportunity MS1 exploits — and the pattern is stable across epochs.

use eta_bench::table::pct;
use eta_bench::{scaled_config, scaled_task, Table, SEED};
use eta_lstm_core::cell::{self, P1Dense};
use eta_lstm_core::{Task, Trainer, TrainingStrategy};
use eta_tensor::Matrix;

/// Collects |value| samples of the five FW intermediates and the six
/// P1 products by running the model's layers over one task batch.
fn collect(trainer: &Trainer, task: &dyn Task) -> (Vec<f32>, Vec<f32>) {
    let batch = task.batch(0, 0);
    let model = trainer.model();
    let mut fw_samples = Vec::new();
    let mut p1_samples = Vec::new();
    let mut inputs = batch.inputs.clone();
    for layer in model.layers() {
        let batch_n = inputs[0].rows();
        let h = layer.hidden();
        let mut h_prev = Matrix::zeros(batch_n, h);
        let mut s_prev = Matrix::zeros(batch_n, h);
        let mut next_inputs = Vec::with_capacity(inputs.len());
        for x in &inputs {
            let fw = cell::forward(&layer.params, x, &h_prev, &s_prev).expect("forward");
            for m in [&fw.i, &fw.f, &fw.c, &fw.o, &fw.s] {
                fw_samples.extend(m.as_slice().iter().map(|v| v.abs()));
            }
            let p1 = P1Dense::compute(&fw, &s_prev).expect("p1");
            for m in p1.streams() {
                p1_samples.extend(m.as_slice().iter().map(|v| v.abs()));
            }
            next_inputs.push(fw.h.clone());
            h_prev = fw.h;
            s_prev = fw.s;
        }
        inputs = next_inputs;
    }
    (fw_samples, p1_samples)
}

fn cumulative_below(samples: &[f32], threshold: f32) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&v| v < threshold).count() as f64 / samples.len() as f64
}

fn main() {
    let benchmark = eta_workloads::Benchmark::Imdb;
    let cfg = scaled_config(benchmark);
    let task = scaled_task(benchmark);

    let mut table = Table::new(
        "Fig. 6 — cumulative |value| distribution (fraction below x)",
        &[
            "epoch", "stream", "<0.1", "<0.2", "<0.3", "<0.5", "<0.7", "<1.0",
        ],
    );

    let mut trainer = Trainer::new(cfg, TrainingStrategy::Baseline, SEED)
        .expect("trainer")
        .with_parallelism(eta_bench::engine_from_env());
    // Checkpoints at epochs 1, 5 and 10 (epochs accumulate across the
    // incremental `run` calls).
    for checkpoint in [1usize, 5, 10] {
        trainer
            .run(&task, if checkpoint == 1 { 1 } else { 4 })
            .expect("train");
        let (fw, p1) = collect(&trainer, &task);
        for (name, samples) in [("FW intermediates", &fw), ("BP-EW-P1", &p1)] {
            let cells: Vec<String> = [0.1f32, 0.2, 0.3, 0.5, 0.7, 1.0]
                .iter()
                .map(|&t| pct(cumulative_below(samples, t)))
                .collect();
            let mut row = vec![format!("{checkpoint}"), name.to_string()];
            row.extend(cells);
            table.row(&row);
        }
    }
    table.print();
    println!(
        "paper: ~25% of FW intermediates but ~65% of BP-EW-P1 results fall\n\
         below 0.1, stable across epochs — the gap is MS1's compression\n\
         opportunity. The shape requirement is P1 ≫ FW at the 0.1 mark."
    );
}
