//! Table II — accuracy impact of the memory-saving optimizations:
//! baseline vs Combine-MS vs Combine-All (MS1×MS2×MS3 with k = 4, bf16
//! storage and dynamic loss scaling), trained to completion on each
//! benchmark's (scaled, synthetic) task, reporting that benchmark's own
//! metric.
//!
//! Paper headline: <1 % accuracy difference and no convergence-speed
//! impact across all six benchmarks. The Combine-All column extends the
//! same criterion to the MS3 numerical contract.

use eta_bench::table::fmt;
use eta_bench::{scaled_config, scaled_task, Table, SEED};
use eta_lstm_core::{Task, Trainer, TrainingStrategy};
use eta_tensor::Matrix;
use eta_workloads::spec::Metric;
use eta_workloads::{metrics, Benchmark};

const EPOCHS: usize = 40;

/// Per-timestamp tasks learn more slowly under plain SGD (the gradient
/// is averaged over the timesteps); they get a longer budget.
const EPOCHS_PER_STEP: usize = 100;

/// Batches per epoch / batch size for the Table II protocol: larger than
/// the default scaled task so the evaluation variance is acceptable.
const BATCHES: usize = 8;
const BATCH_SIZE: usize = 8;

/// Evaluates a trained model on fresh (held-out epoch) batches with the
/// benchmark's metric. Returns (metric value, final training loss).
fn evaluate(trainer: &Trainer, task: &dyn Task, metric: Metric) -> f64 {
    let model = trainer.model();
    let eval_epoch = EPOCHS + 1000; // unseen data
    let mut losses = Vec::new();
    let mut accs = Vec::new();
    let mut maes = Vec::new();
    let mut bleu_cands: Vec<Vec<u32>> = Vec::new();
    let mut bleu_refs: Vec<Vec<u32>> = Vec::new();

    for b in 0..task.batches_per_epoch() {
        let batch = task.batch(eval_epoch, b);
        let (loss, acc) = model
            .evaluate(&batch.inputs, &batch.targets)
            .expect("evaluation");
        losses.push(loss);
        if let Some(a) = acc {
            accs.push(a);
        }
        match (&batch.targets, metric) {
            (eta_lstm_core::Targets::Regression(target), Metric::MeanAbsoluteError) => {
                let out = model.forward_inference(&batch.inputs).expect("inference");
                let last = out.last().expect("nonempty sequence");
                let pred = Matrix::from_fn(last.rows(), target.cols(), |r, c| last.get(r, c));
                maes.push(metrics::mae(&pred, target));
            }
            (eta_lstm_core::Targets::StepClasses(steps), Metric::Bleu) => {
                let out = model.forward_inference(&batch.inputs).expect("inference");
                // One candidate/reference token sequence per batch row.
                for row in 0..batch.inputs[0].rows() {
                    let cand: Vec<u32> = out
                        .iter()
                        .map(|logits| argmax(logits.row(row)) as u32)
                        .collect();
                    let reference: Vec<u32> = steps.iter().map(|s| s[row] as u32).collect();
                    bleu_cands.push(cand);
                    bleu_refs.push(reference);
                }
            }
            _ => {}
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    match metric {
        Metric::Accuracy => mean(&accs) * 100.0,
        Metric::Perplexity => metrics::perplexity(mean(&losses)),
        Metric::MeanAbsoluteError => mean(&maes),
        Metric::Bleu => metrics::bleu(&bleu_cands, &bleu_refs, 4) * 100.0,
    }
}

fn argmax(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn metric_name(m: Metric) -> &'static str {
    match m {
        Metric::Accuracy => "accuracy %",
        Metric::Perplexity => "PPL",
        Metric::MeanAbsoluteError => "MAE",
        Metric::Bleu => "BLEU",
    }
}

fn main() {
    let (telemetry, _trace) = eta_bench::instrumentation_from_env("table02_accuracy");
    let mut table = Table::new(
        "Table II — accuracy impact (scaled synthetic analogues)",
        &[
            "benchmark",
            "metric",
            "Baseline",
            "Combine-MS",
            "Combine-All",
            "first-epoch loss (B)",
            "final loss (B)",
            "final loss (C-MS)",
            "final loss (C-All)",
        ],
    );
    for b in Benchmark::ALL {
        let spec = b.spec();
        let small = scaled_config(b);
        let cfg = eta_lstm_core::LstmConfig::builder()
            .input_size(small.input_size)
            .hidden_size(small.hidden_size)
            .layers(small.layers)
            .seq_len(small.seq_len)
            .batch_size(BATCH_SIZE)
            .output_size(small.output_size)
            .build()
            .expect("valid config");
        let task = scaled_task(b)
            .with_batch_size(BATCH_SIZE)
            .with_batches_per_epoch(BATCHES);
        // Per-timestamp tasks divide their gradient across timesteps, so
        // they need a proportionally larger step to converge in the same
        // epoch budget.
        let sgd = match spec.loss_kind {
            eta_lstm_core::LossKind::PerTimestamp => {
                eta_lstm_core::optimizer::Sgd { lr: 4.0, clip: 5.0 }
            }
            eta_lstm_core::LossKind::SingleLoss => eta_lstm_core::optimizer::Sgd::default(),
        };

        let epochs = match spec.loss_kind {
            eta_lstm_core::LossKind::PerTimestamp => EPOCHS_PER_STEP,
            eta_lstm_core::LossKind::SingleLoss => EPOCHS,
        };
        let train_and_eval = |strategy: TrainingStrategy| {
            let mut trainer = Trainer::new(cfg, strategy, SEED)
                .expect("trainer")
                .with_parallelism(eta_bench::engine_from_env())
                .with_optimizer(sgd);
            if let Some(t) = &telemetry {
                trainer = trainer.with_telemetry(t.clone());
            }
            let report = trainer.run(&task, epochs).expect("training");
            let metric = evaluate(&trainer, &task, spec.metric);
            (report, metric)
        };
        let (base_report, base_metric) = train_and_eval(TrainingStrategy::Baseline);
        let (comb_report, comb_metric) = train_and_eval(TrainingStrategy::CombinedMs);
        let (all_report, all_metric) = train_and_eval(TrainingStrategy::CombinedAll);

        table.row(&[
            spec.name.to_string(),
            metric_name(spec.metric).to_string(),
            fmt(base_metric, 2),
            fmt(comb_metric, 2),
            fmt(all_metric, 2),
            fmt(base_report.epochs[0].mean_loss, 3),
            fmt(base_report.final_loss(), 3),
            fmt(comb_report.final_loss(), 3),
            fmt(all_report.final_loss(), 3),
        ]);
    }
    table.print();
    println!(
        "paper (real datasets): TREC10 78.82->78.80%, PTB 217.19->218.36 PPL,\n\
         IMDB 76.78->76.78%, WAYMO 0.138->0.138 MAE, WMT 3.13->3.13 BLEU,\n\
         BABI 68.75->68.69% — i.e. <1% difference and unchanged convergence.\n\
         The reproduction criterion is the same: Combine-MS within ~1% of the\n\
         baseline metric on each scaled analogue, with comparable loss curves.\n\
         Combine-All adds MS3 (k=4 recompute checkpointing + bf16 storage with\n\
         dynamic loss scaling) and is held to the same within-~1% criterion."
    );
    if let Some(t) = telemetry {
        t.flush();
    }
}
