//! Ablation — the MS2 skip threshold: how much of the BP graph the
//! Eq. 4 predictor prunes at each relative cutoff (on the paper-scale
//! benchmark graphs), and what that does to convergence on a scaled
//! run.

use eta_bench::table::{fmt, pct};
use eta_bench::{scaled_config, scaled_task, Table, SEED};
use eta_lstm_core::ms2::{plan_skips, GradPredictor, Ms2Config};
use eta_lstm_core::strategy::StrategyParams;
use eta_lstm_core::{Trainer, TrainingStrategy};
use eta_workloads::Benchmark;

fn main() {
    // Part 1: skip fraction per benchmark vs threshold (paper scale,
    // exact — the Eq. 4 decision is scale-invariant).
    let thresholds = [0.02f64, 0.05, 0.1, 0.2, 0.5];
    let mut headers: Vec<String> = vec!["benchmark".into(), "loss type".into()];
    headers.extend(thresholds.iter().map(|t| format!("θ={t}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "MS2 skip fraction vs relative threshold (paper-scale graphs)",
        &header_refs,
    );
    for b in Benchmark::ALL {
        let spec = b.spec();
        let beta = GradPredictor::beta_for(spec.loss_kind);
        let predictor = GradPredictor { alpha: 1.0, beta };
        let mut row = vec![
            spec.name.to_string(),
            if beta > 0.0 { "single" } else { "per-step" }.to_string(),
        ];
        for &t in &thresholds {
            let plan = plan_skips(
                &predictor,
                1.0,
                spec.layers,
                spec.seq_len,
                &Ms2Config { skip_threshold: t },
            );
            row.push(pct(plan.skip_fraction()));
        }
        table.row(&row);
    }
    table.print();
    println!(
        "skipping saturates at the 50% convergence guard\n\
         (eta_lstm_core::ms2::MAX_SKIP_FRACTION).\n"
    );

    // Part 2: convergence impact on a scaled single-loss run.
    let cfg = scaled_config(Benchmark::Imdb);
    let task = scaled_task(Benchmark::Imdb).with_batches_per_epoch(8);
    let mut conv = Table::new(
        "Convergence vs threshold (scaled IMDB analogue, 10 epochs)",
        &["threshold", "skip fraction", "final loss"],
    );
    for threshold in [0.0f64, 0.05, 0.1, 0.3] {
        let mut trainer = Trainer::new(cfg, TrainingStrategy::Ms2, SEED)
            .expect("trainer")
            .with_parallelism(eta_bench::engine_from_env())
            .with_params(StrategyParams {
                ms2: Ms2Config {
                    skip_threshold: threshold,
                },
                ..StrategyParams::default()
            });
        let report = trainer.run(&task, 10).expect("training");
        conv.row(&[
            fmt(threshold, 2),
            pct(report.mean_skip_fraction()),
            fmt(report.final_loss(), 4),
        ]);
    }
    conv.print();
    println!(
        "paper claim (Table II / Sec. VI-B4): with the convergence-aware\n\
         scaling, skipping does not slow convergence."
    );
}
