//! Figure 15 — (a) speedup and (b) normalized energy of every design
//! point against the GPU baseline, on the six Table I benchmarks:
//! MS1 / MS2 / Combine-MS (software on GPU), LSTM-Inf / Static-Arch /
//! Dyn-Arch (hardware, no software optimizations), and the full η-LSTM
//! (Dyn-Arch + Combine-MS).
//!
//! Paper headline numbers (averages): MS1 1.21×, MS2 1.32×, Combine-MS
//! 1.56× (up to 1.79×); Dyn-Arch 1.42×; LSTM-Inf −27.5 %; Static-Arch
//! −3.4 %; η-LSTM 3.99× (up to 5.73×) with 63.7 % energy saving
//! (2.75× energy improvement, up to 4.25×).

use eta_accel::arch::{AccelConfig, ArchKind, EtaAccel};
use eta_bench::table::fmt;
use eta_bench::{baseline_gpu, bench_effects, geomean, Table};
use eta_lstm_core::TrainingStrategy;
use eta_workloads::Benchmark;

struct DesignPoint {
    name: &'static str,
    speedups: Vec<f64>,
    energies: Vec<f64>,
}

fn main() {
    let (telemetry, _trace) = eta_bench::instrumentation_from_env("fig15_speedup_energy");
    let gpu = baseline_gpu();
    let machines = [
        EtaAccel::new(AccelConfig::paper_4board(), ArchKind::LstmInf),
        EtaAccel::new(AccelConfig::paper_4board(), ArchKind::StaticArch),
        EtaAccel::new(AccelConfig::paper_4board(), ArchKind::DynArch),
    ];

    let mut points: Vec<DesignPoint> = vec![
        DesignPoint {
            name: "MS1",
            speedups: vec![],
            energies: vec![],
        },
        DesignPoint {
            name: "MS2",
            speedups: vec![],
            energies: vec![],
        },
        DesignPoint {
            name: "Combine-MS",
            speedups: vec![],
            energies: vec![],
        },
        DesignPoint {
            name: "LSTM-Inf",
            speedups: vec![],
            energies: vec![],
        },
        DesignPoint {
            name: "Static-Arch",
            speedups: vec![],
            energies: vec![],
        },
        DesignPoint {
            name: "Dyn-Arch",
            speedups: vec![],
            energies: vec![],
        },
        DesignPoint {
            name: "eta-LSTM",
            speedups: vec![],
            energies: vec![],
        },
    ];

    let mut labels = Vec::new();
    for b in Benchmark::ALL {
        labels.push(b.spec().name.to_string());
        let shape = b.spec().shape();
        let eff = bench_effects(b);
        let base = gpu.estimate(&shape, &eff.for_strategy(TrainingStrategy::Baseline));

        // Software-on-GPU points.
        for (i, strat) in [
            TrainingStrategy::Ms1,
            TrainingStrategy::Ms2,
            TrainingStrategy::CombinedMs,
        ]
        .iter()
        .enumerate()
        {
            let e = gpu.estimate(&shape, &eff.for_strategy(*strat));
            points[i].speedups.push(base.time_s / e.time_s);
            points[i].energies.push(e.energy_j / base.energy_j);
        }
        // Hardware points, no software optimizations.
        for (i, m) in machines.iter().enumerate() {
            let r = m.simulate_instrumented(
                &shape,
                &eff.for_strategy(TrainingStrategy::Baseline),
                telemetry.as_ref(),
            );
            points[3 + i].speedups.push(base.time_s / r.time_s);
            points[3 + i].energies.push(r.energy_j() / base.energy_j);
        }
        // Full eta-LSTM: Dyn-Arch hardware + Combine-MS software.
        let full = machines[2].simulate_instrumented(
            &shape,
            &eff.for_strategy(TrainingStrategy::CombinedMs),
            telemetry.as_ref(),
        );
        points[6].speedups.push(base.time_s / full.time_s);
        points[6].energies.push(full.energy_j() / base.energy_j);
    }

    let mut headers: Vec<&str> = vec!["design"];
    for l in &labels {
        headers.push(l);
    }
    headers.push("geomean");

    let mut speed = Table::new("Fig. 15a — speedup over GPU baseline", &headers);
    for p in &points {
        let mut row = vec![p.name.to_string()];
        row.extend(p.speedups.iter().map(|&s| fmt(s, 2)));
        row.push(fmt(geomean(&p.speedups), 2));
        speed.row(&row);
    }
    speed.print();
    println!(
        "paper averages: MS1 1.21x, MS2 1.32x, Combine-MS 1.56x (max 1.79x),\n\
         LSTM-Inf 0.73x, Static-Arch 0.97x, Dyn-Arch 1.42x (max 1.85x),\n\
         eta-LSTM 3.99x (max 5.73x).\n"
    );

    let mut energy = Table::new(
        "Fig. 15b — normalized energy vs GPU baseline (lower is better)",
        &headers,
    );
    for p in &points {
        let mut row = vec![p.name.to_string()];
        row.extend(p.energies.iter().map(|&e| fmt(e, 2)));
        row.push(fmt(geomean(&p.energies), 2));
        energy.row(&row);
    }
    energy.print();
    println!(
        "paper averages: MS1 0.82, MS2 0.77, Combine-MS 0.65, LSTM-Inf 1.77,\n\
         Static-Arch 1.33, Dyn-Arch 0.91, eta-LSTM 0.36 (energy saving 63.7%,\n\
         up to 76.5%)."
    );
    if let Some(t) = telemetry {
        t.flush();
    }
}
