//! Figure 4 — DRAM data movement caused by parameters, activation
//! data, and intermediate variables across the H/LN/LL sweeps.
//!
//! Paper headline numbers: intermediates move 4.34× the activation
//! bytes on average (up to 4.81×), and parameters ≈1.08× the
//! activations.

use eta_bench::table::{fmt, gb};
use eta_bench::{mean, Table};
use eta_memsim::model::{traffic, LstmShape, OptEffects};

fn sweep() -> Vec<(String, LstmShape)> {
    let mut configs = Vec::new();
    for h in [256usize, 512, 1024, 2048, 3072] {
        configs.push((format!("H{h}"), LstmShape::new(h, h, 3, 35, 128)));
    }
    for ln in 2..=8usize {
        configs.push((format!("LN{ln}"), LstmShape::new(2048, 2048, ln, 35, 128)));
    }
    for ll in [18usize, 35, 100, 151, 303] {
        configs.push((format!("LL{ll}"), LstmShape::new(1024, 1024, 3, ll, 128)));
    }
    configs
}

fn main() {
    let mut table = Table::new(
        "Fig. 4 — data movement per training iteration (GB)",
        &[
            "config",
            "parameter",
            "activations",
            "intermediates",
            "int/act",
            "param/act",
        ],
    );
    let base = OptEffects::baseline();
    let mut int_act = Vec::new();
    let mut param_act = Vec::new();
    for (label, shape) in sweep() {
        let t = traffic(&shape, &base);
        let ia = t.int_to_act_ratio();
        let pa = t.weights as f64 / t.activations as f64;
        int_act.push(ia);
        param_act.push(pa);
        table.row(&[
            label,
            gb(t.weights),
            gb(t.activations),
            gb(t.intermediates),
            fmt(ia, 2),
            fmt(pa, 2),
        ]);
    }
    table.row(&[
        "Ave".to_string(),
        String::new(),
        String::new(),
        String::new(),
        fmt(mean(&int_act), 2),
        fmt(mean(&param_act), 2),
    ]);
    table.print();
    println!(
        "paper: intermediates average 4.34x the activation data movement\n\
         (up to 4.81x); parameters average 1.08x. Measured averages above."
    );
}
