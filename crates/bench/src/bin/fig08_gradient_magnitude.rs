//! Figure 8 — per-timestep weight-gradient magnitude for (a) a
//! single-loss LSTM (IMDB-style) and (b) a per-timestamp-loss LSTM
//! (WMT/MLPerf-style).
//!
//! Paper shapes: single-loss magnitudes decay from the last timestep
//! toward the first (loss vanishing over propagation distance);
//! per-timestamp magnitudes grow from the last toward the first (per
//! step losses accumulate along the backward chain).

use eta_bench::table::fmt;
use eta_bench::{scaled_config, scaled_task, Table, SEED};
use eta_lstm_core::{Trainer, TrainingStrategy};
use eta_workloads::Benchmark;

fn magnitudes_for(benchmark: Benchmark) -> Vec<Vec<f64>> {
    let cfg = scaled_config(benchmark);
    let task = scaled_task(benchmark);
    let mut trainer = Trainer::new(cfg, TrainingStrategy::Baseline, SEED)
        .expect("trainer")
        .with_parallelism(eta_bench::engine_from_env());
    let report = trainer.run(&task, 1).expect("train");
    report.first_epoch_magnitudes
}

fn print_panel(title: &str, benchmark: Benchmark) -> (f64, f64) {
    let mags = magnitudes_for(benchmark);
    let seq = mags[0].len();
    let mut table = Table::new(title, &["timestep", "layer0", "layer_top"]);
    let top = mags.len() - 1;
    // Normalize per layer to its own maximum, like the paper's relative
    // magnitude plots.
    let norm = |row: &[f64]| -> Vec<f64> {
        let max = row.iter().cloned().fold(1e-30, f64::max);
        row.iter().map(|&v| v / max).collect()
    };
    let l0 = norm(&mags[0]);
    let lt = norm(&mags[top]);
    for t in 0..seq {
        table.row(&[t.to_string(), fmt(l0[t], 3), fmt(lt[t], 3)]);
    }
    table.print();
    // Return (early mean, late mean) of layer0 for the trend check.
    let early: f64 = l0[..seq / 3].iter().sum::<f64>() / (seq / 3) as f64;
    let late: f64 = l0[seq - seq / 3..].iter().sum::<f64>() / (seq / 3) as f64;
    (early, late)
}

fn main() {
    let (early_s, late_s) = print_panel(
        "Fig. 8a — single-loss LSTM (IMDB-style), normalized |dW|+|dU| per BP cell",
        Benchmark::Imdb,
    );
    println!(
        "single-loss trend: early-timestep mean {:.3} vs late-timestep mean {:.3}\n\
         (paper: magnitude decays from last toward first cell => late >> early)\n",
        early_s, late_s
    );

    let (early_p, late_p) = print_panel(
        "Fig. 8b — per-timestamp-loss LSTM (WMT-style), normalized |dW|+|dU| per BP cell",
        Benchmark::Wmt,
    );
    println!(
        "per-timestamp trend: early-timestep mean {:.3} vs late-timestep mean {:.3}\n\
         (paper: magnitude grows from last toward first cell => early >> late)",
        early_p, late_p
    );
}
