//! Figure 11 — the timing chart of the adder-based streaming
//! accumulator, plus the drain-overhead analysis behind the paper's
//! "<2.87 % latency overhead beyond 1024 inputs" claim.

use eta_accel::accumulator::AccumulatorSim;
use eta_bench::table::pct;
use eta_bench::Table;

fn main() {
    // The paper's walkthrough: values A..H through a 2-cycle adder.
    let sim2 = AccumulatorSim::new(2);
    let run = sim2.run(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    let mut chart = Table::new(
        "Fig. 11 — streaming accumulation of A..H, 2-cycle adder",
        &[
            "issue cycle",
            "adder input 1",
            "adder input 2",
            "result ready",
        ],
    );
    for e in &run.events {
        chart.row(&[
            e.cycle.to_string(),
            e.lhs.clone(),
            e.rhs.clone(),
            e.done_cycle.to_string(),
        ]);
    }
    chart.print();
    println!(
        "final sum {} ready at cycle {} (paper Fig. 11: Sum(A~H) at cycle 12)\n",
        run.sum, run.cycles
    );

    // Drain overhead at the paper's 8-cycle adder.
    let sim8 = AccumulatorSim::new(8);
    let mut overhead = Table::new(
        "Streaming overhead vs ideal (8-cycle adder)",
        &["inputs", "cycles", "ideal n+L", "overhead"],
    );
    for n in [64usize, 256, 1024, 4096, 16384] {
        let r = sim8.run(&vec![1.0f32; n]);
        overhead.row(&[
            n.to_string(),
            r.cycles.to_string(),
            (n as u64 + 8).to_string(),
            pct(r.drain_overhead(n as u64, 8)),
        ]);
    }
    overhead.print();
    println!(
        "paper: <2.87% latency overhead for accumulations with more than\n\
         1024 streaming inputs."
    );
}
