//! MS3 strategy matrix — peak footprint and DRAM traffic for every
//! training strategy (Baseline, MS1, MS2, Combine-MS, MS3, Combine-All)
//! across the LN layer sweep, with per-strategy reduction vs baseline.
//!
//! Companion to Fig. 5/Fig. 12: shows what recompute checkpointing plus
//! narrow storage (k = 4, bf16) adds on top of the paper's MS1×MS2
//! combination.

use eta_bench::table::{gb, pct};
use eta_bench::{BenchEffects, Table};
use eta_lstm_core::strategy::StrategyParams;
use eta_lstm_core::TrainingStrategy;
use eta_memsim::model::{footprint, traffic, LstmShape, OptEffects};

/// Representative measured effects (Fig. 6 / Table II neighbourhood).
const P1_DENSITY: f64 = 0.35;
const SKIP_FRACTION: f64 = 0.49;

fn main() {
    let (telemetry, _trace) = eta_bench::instrumentation_from_env("ms3_matrix");
    let ms3 = StrategyParams::default().ms3;
    let effects = BenchEffects {
        p1_density: P1_DENSITY,
        skip_fraction: SKIP_FRACTION,
        ms3_k: ms3.k,
        ms3_bytes_per_element: ms3.precision.bytes_per_element(),
    };

    let shapes: Vec<(String, LstmShape)> = (5..=8)
        .map(|ln| (format!("LN{ln}"), LstmShape::new(2048, 2048, ln, 35, 128)))
        .collect();

    let mut fp_table = Table::new(
        &format!(
            "MS3 matrix — peak footprint per training iteration (GB), \
             MS3: k={}, {} storage",
            ms3.k,
            ms3.precision.label()
        ),
        &["strategy", "LN5", "LN6", "LN7", "LN8", "LN7 reduction"],
    );
    let mut tr_table = Table::new(
        "MS3 matrix — DRAM traffic per training iteration (GB)",
        &["strategy", "LN5", "LN6", "LN7", "LN8", "LN7 reduction"],
    );

    let ln7 = &shapes[2].1;
    let base_fp = footprint(ln7, &OptEffects::baseline()).total();
    let base_tr = traffic(ln7, &OptEffects::baseline()).total();
    for strategy in TrainingStrategy::ALL_WITH_MS3 {
        let eff = effects.for_strategy(strategy);
        let fps: Vec<u64> = shapes
            .iter()
            .map(|(_, s)| footprint(s, &eff).total())
            .collect();
        let trs: Vec<u64> = shapes
            .iter()
            .map(|(_, s)| traffic(s, &eff).total())
            .collect();
        if let Some(t) = &telemetry {
            t.gauge_with(
                eta_telemetry::keys::FOOTPRINT_BYTES,
                eta_telemetry::labels!(config = "LN7", component = strategy.to_string()),
                fps[2] as f64,
            );
        }
        fp_table.row(&[
            strategy.to_string(),
            gb(fps[0]),
            gb(fps[1]),
            gb(fps[2]),
            gb(fps[3]),
            pct(1.0 - fps[2] as f64 / base_fp as f64),
        ]);
        tr_table.row(&[
            strategy.to_string(),
            gb(trs[0]),
            gb(trs[1]),
            gb(trs[2]),
            gb(trs[3]),
            pct(1.0 - trs[2] as f64 / base_tr as f64),
        ]);
    }
    fp_table.print();
    println!();
    tr_table.print();
    println!(
        "\ncontract: Combine-All <= each component per category; LN7\n\
         footprint reduction >= 40% (gated by tests/ms3_footprint.rs)."
    );
    if let Some(t) = telemetry {
        t.flush();
    }
}
