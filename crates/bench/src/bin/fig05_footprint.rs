//! Figure 5 — GPU memory-footprint breakdown (parameters, activations,
//! intermediate variables) and total size across the H/LN/LL sweeps.
//!
//! Paper headline: intermediates contribute 47.18 % of the footprint on
//! average, up to 74.01 %.

use eta_bench::table::{gb, pct};
use eta_bench::{mean, Table};
use eta_memsim::model::{footprint, LstmShape, OptEffects};

fn main() {
    let (telemetry, _trace) = eta_bench::instrumentation_from_env("fig05_footprint");
    let mut table = Table::new(
        "Fig. 5 — memory footprint per training iteration (GB)",
        &[
            "config",
            "parameter",
            "activations",
            "intermediates",
            "total",
            "int share",
        ],
    );
    let base = OptEffects::baseline();
    let mut shares = Vec::new();
    let mut configs: Vec<(String, LstmShape)> = Vec::new();
    for h in [256usize, 512, 1024, 2048, 3072] {
        configs.push((format!("H{h}"), LstmShape::new(h, h, 3, 35, 128)));
    }
    for ln in 2..=8usize {
        configs.push((format!("LN{ln}"), LstmShape::new(2048, 2048, ln, 35, 128)));
    }
    for ll in [18usize, 35, 100, 151, 303] {
        configs.push((format!("LL{ll}"), LstmShape::new(1024, 1024, 3, ll, 128)));
    }
    for (label, shape) in configs {
        let f = footprint(&shape, &base);
        shares.push(f.intermediate_share());
        if let Some(t) = &telemetry {
            for (component, bytes) in [
                ("weights", f.weights),
                ("activations", f.activations),
                ("intermediates", f.intermediates),
                ("total", f.total()),
            ] {
                t.gauge_with(
                    eta_telemetry::keys::FOOTPRINT_BYTES,
                    eta_telemetry::labels!(config = label, component = component),
                    bytes as f64,
                );
            }
        }
        table.row(&[
            label,
            gb(f.weights),
            gb(f.activations),
            gb(f.intermediates),
            gb(f.total()),
            pct(f.intermediate_share()),
        ]);
    }
    table.row(&[
        "Ave".to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        pct(mean(&shares)),
    ]);
    table.print();
    println!(
        "paper: intermediate variables average 47.18% of the footprint\n\
         (up to 74.01%). Measured average above."
    );
    if let Some(t) = telemetry {
        t.flush();
    }
}
