//! Ablation — the MS1 near-zero pruning threshold (the paper picks
//! ≈0.1 as the point of "large memory savings and little training
//! accuracy loss", Sec. IV-A / VI-B4).
//!
//! Sweeps the threshold on a scaled IMDB-style run, reporting the
//! measured P1 density, intermediate footprint ratio, final loss and
//! held-out accuracy.

use eta_bench::table::{fmt, pct};
use eta_bench::{scaled_config, scaled_task, Table, SEED};
use eta_lstm_core::ms1::Ms1Config;
use eta_lstm_core::strategy::StrategyParams;
use eta_lstm_core::{Task, Trainer, TrainingStrategy};
use eta_workloads::Benchmark;

fn main() {
    let cfg = scaled_config(Benchmark::Imdb);
    let task = scaled_task(Benchmark::Imdb).with_batches_per_epoch(8);

    // Baseline footprint reference.
    let mut base = Trainer::new(cfg, TrainingStrategy::Baseline, SEED)
        .expect("trainer")
        .with_parallelism(eta_bench::engine_from_env());
    let base_report = base.run(&task, 10).expect("training");
    let base_int = base_report
        .epochs
        .last()
        .expect("epochs")
        .peak_intermediates as f64;

    let mut table = Table::new(
        "MS1 pruning-threshold ablation (scaled IMDB analogue)",
        &[
            "threshold",
            "P1 density",
            "int footprint",
            "final loss",
            "held-out acc",
        ],
    );
    for threshold in [0.0f32, 0.02, 0.05, 0.1, 0.2, 0.4] {
        let mut trainer = Trainer::new(cfg, TrainingStrategy::Ms1, SEED)
            .expect("trainer")
            .with_parallelism(eta_bench::engine_from_env())
            .with_params(StrategyParams {
                ms1: Ms1Config { threshold },
                ..StrategyParams::default()
            });
        let report = trainer.run(&task, 10).expect("training");
        let int = report.epochs.last().expect("epochs").peak_intermediates as f64;

        let mut acc_sum = 0.0;
        for i in 0..4 {
            let batch = task.batch(999, i);
            let (_, acc) = trainer
                .model()
                .evaluate(&batch.inputs, &batch.targets)
                .expect("evaluation");
            acc_sum += acc.expect("classification");
        }
        table.row(&[
            fmt(threshold as f64, 2),
            fmt(report.mean_p1_density(), 2),
            pct(int / base_int),
            fmt(report.final_loss(), 4),
            pct(acc_sum / 4.0),
        ]);
    }
    table.print();
    println!(
        "paper design point: threshold 0.1 — large footprint reduction with\n\
         negligible accuracy impact; beyond it the gradient signal degrades."
    );
}
