//! Ablation — sensitivity of the static design to its MatMul/EW
//! partition choice: the reason no fixed split works across the paper's
//! benchmarks (and across the optimization-induced workload shifts),
//! which is the R2A scheduler's raison d'être.

use eta_accel::arch::{AccelConfig, ArchKind, EtaAccel};
use eta_accel::scheduler::{simulate_dynamic, simulate_static};
use eta_bench::table::fmt;
use eta_bench::Table;
use eta_memsim::model::OptEffects;
use eta_workloads::Benchmark;

fn main() {
    // Part 1: pure scheduler view — makespan of one reordered FW phase
    // (MS1 puts ~26 EW ops per hidden element next to the MatMul) under
    // different static splits, normalized to R2A.
    let shape = Benchmark::Ptb.spec().shape();
    let fw = EtaAccel::forward_workload(&shape, &OptEffects::ms1(0.4));
    let ops_per_cycle = AccelConfig::paper_4board().ops_per_cycle();
    let dyn_cycles = simulate_dynamic(&fw, ops_per_cycle).cycles;

    let mut table = Table::new(
        "Static-partition sensitivity (PTB forward phase with MS1 reordering)",
        &["EW fraction", "cycles vs R2A", "utilization"],
    );
    for ew_fraction in [0.05f64, 0.15, 0.25, 0.35, 0.5, 0.7] {
        let timing = simulate_static(&fw, ops_per_cycle, ew_fraction);
        table.row(&[
            fmt(ew_fraction, 2),
            fmt(timing.cycles / dyn_cycles, 2),
            fmt(timing.utilization(), 2),
        ]);
    }
    table.print();
    println!(
        "in *aggregate*, tiny EW groups look efficient — but the cell's\n\
         kernels are data-dependent and bursty (see fig10_utilization), so\n\
         static designs provision EW for peak rate (the 25-40% range of\n\
         inference accelerators), and that provision is what idles: at the\n\
         provisioned 0.35-0.5 splits the makespan is 1.5-1.9x R2A.\n"
    );

    // Part 2: whole-machine view across benchmarks at the design's
    // chosen split.
    let mut bench_table = Table::new(
        "Static-Arch slowdown vs Dyn-Arch per benchmark (baseline flow)",
        &["benchmark", "static/dyn time"],
    );
    for b in Benchmark::ALL {
        let s = b.spec().shape();
        let t_static = EtaAccel::new(AccelConfig::paper_4board(), ArchKind::StaticArch)
            .simulate(&s, &OptEffects::baseline())
            .time_s;
        let t_dyn = EtaAccel::new(AccelConfig::paper_4board(), ArchKind::DynArch)
            .simulate(&s, &OptEffects::baseline())
            .time_s;
        bench_table.row(&[b.spec().name.to_string(), fmt(t_static / t_dyn, 2)]);
    }
    bench_table.print();
    println!(
        "paper: Static-Arch trails the baseline GPU by 3.36% on average and\n\
         Dyn-Arch beats it by 1.42x — the gap above is that difference."
    );
}
