//! Ablation — adder pipeline latency vs streaming-accumulation
//! overhead: how sensitive the Omni-PE design is to the FP adder depth
//! (the paper's design assumes 8 cycles).

use eta_accel::accumulator::AccumulatorSim;
use eta_bench::table::pct;
use eta_bench::Table;

fn main() {
    let lengths = [64usize, 256, 1024, 4096];
    let mut headers: Vec<String> = vec!["adder latency".into()];
    headers.extend(lengths.iter().map(|n| format!("n={n}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Streaming-accumulation overhead vs adder latency",
        &header_refs,
    );
    for latency in [2u32, 4, 8, 16, 32] {
        let sim = AccumulatorSim::new(latency);
        let mut row = vec![format!("{latency} cycles")];
        for &n in &lengths {
            let run = sim.run(&vec![1.0f32; n]);
            row.push(pct(run.drain_overhead(n as u64, latency)));
        }
        table.row(&row);
    }
    table.print();
    println!(
        "the drain overhead grows with adder depth but vanishes with stream\n\
         length; at the paper's 8-cycle adder and >=1024-element LSTM gate\n\
         streams it stays under the reported 2.87%."
    );
}
