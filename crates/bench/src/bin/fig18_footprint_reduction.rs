//! Figure 18 — normalized memory footprint under the memory-saving
//! optimizations, per benchmark.
//!
//! Paper headlines: MS1 reduces footprint 32.37 % on average (up to
//! 39.09 %), MS2 41.65 % (up to 61.68 %), combined 57.52 % (up to
//! 75.75 %).

use eta_bench::table::{fmt, pct};
use eta_bench::{bench_effects, mean, Table};
use eta_lstm_core::TrainingStrategy;
use eta_memsim::model::footprint;
use eta_workloads::Benchmark;

fn main() {
    let mut headers: Vec<String> = vec!["design".to_string()];
    headers.extend(Benchmark::ALL.iter().map(|b| b.spec().name.to_string()));
    headers.push("avg reduction".to_string());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Fig. 18 — normalized memory footprint (1.0 = baseline)",
        &header_refs,
    );

    for strategy in [
        TrainingStrategy::Ms1,
        TrainingStrategy::Ms2,
        TrainingStrategy::CombinedMs,
    ] {
        let mut normalized = Vec::new();
        for b in Benchmark::ALL {
            let shape = b.spec().shape();
            let eff = bench_effects(b);
            let base = footprint(&shape, &eff.for_strategy(TrainingStrategy::Baseline)).total();
            let opt = footprint(&shape, &eff.for_strategy(strategy)).total();
            normalized.push(opt as f64 / base as f64);
        }
        let mut row = vec![strategy.to_string()];
        row.extend(normalized.iter().map(|&v| fmt(v, 2)));
        row.push(pct(1.0 - mean(&normalized)));
        table.row(&row);
    }
    table.print();
    println!(
        "paper averages: MS1 -32.37% (max -39.09%), MS2 -41.65%\n\
         (max -61.68%), Combine-MS -57.52% (max -75.75%)."
    );
}
