//! Figure 17 — normalized data movement for (a) weight matrices,
//! (b) activation data, (c) intermediate variables, under MS1, MS2,
//! and the full η-LSTM, per benchmark.
//!
//! Paper headline averages: MS1 cuts weights 31.79 % and intermediates
//! 60.27 % (activations untouched); MS2 cuts 24.67 % / 32.89 % /
//! 49.34 %; η-LSTM overall 40.85 % / 32.89 % / 80.04 %.

use eta_bench::table::fmt;
use eta_bench::{bench_effects, mean, Table};
use eta_lstm_core::TrainingStrategy;
use eta_memsim::model::traffic;
use eta_memsim::DataCategory;
use eta_workloads::Benchmark;

fn main() {
    let strategies = [
        TrainingStrategy::Ms1,
        TrainingStrategy::Ms2,
        TrainingStrategy::CombinedMs,
    ];
    for category in DataCategory::ALL {
        let mut headers: Vec<String> = vec!["design".to_string()];
        headers.extend(Benchmark::ALL.iter().map(|b| b.spec().name.to_string()));
        headers.push("avg reduction".to_string());
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(
            &format!("Fig. 17 — normalized {category} data movement (1.0 = baseline)"),
            &header_refs,
        );
        for strategy in strategies {
            let mut normalized = Vec::new();
            for b in Benchmark::ALL {
                let shape = b.spec().shape();
                let eff = bench_effects(b);
                let base = traffic(&shape, &eff.for_strategy(TrainingStrategy::Baseline));
                let opt = traffic(&shape, &eff.for_strategy(strategy));
                let pick = |t: &eta_memsim::model::TrafficBreakdown| match category {
                    DataCategory::Weights => t.weights,
                    DataCategory::Activations => t.activations,
                    DataCategory::Intermediates => t.intermediates,
                };
                normalized.push(pick(&opt) as f64 / pick(&base) as f64);
            }
            let mut row = vec![strategy.to_string()];
            row.extend(normalized.iter().map(|&v| fmt(v, 2)));
            row.push(format!("{:.1}%", (1.0 - mean(&normalized)) * 100.0));
            table.row(&row);
        }
        table.print();
    }
    println!(
        "paper average reductions — weights: MS1 31.79%, MS2 24.67%,\n\
         eta-LSTM 40.85%; activations: MS1 0%, MS2 32.89%, eta-LSTM 32.89%;\n\
         intermediates: MS1 60.27%, MS2 49.34%, eta-LSTM 80.04%."
    );
}
