//! Ablation — the paper's Scalability Discussion (Sec. V-D): "by adding
//! more channels, η-LSTM can achieve linearly increasing throughput",
//! while the memory cost need not grow linearly because the co-design
//! keeps intermediate data compressed and quickly consumed.

use eta_accel::arch::{AccelConfig, ArchKind, EtaAccel};
use eta_bench::table::fmt;
use eta_bench::Table;
use eta_memsim::model::OptEffects;
use eta_workloads::Benchmark;

fn main() {
    let shape = Benchmark::Ptb.spec().shape();
    let eff = OptEffects::combined(0.35, 0.5);

    let mut table = Table::new(
        "Channel scaling (PTB workload, eta-LSTM flow)",
        &[
            "channels/board",
            "peak TFLOPS",
            "achieved TFLOPS",
            "speedup vs 10ch",
            "scaling eff.",
        ],
    );
    let mut first_time = None;
    let mut first_channels = None;
    for channels in [10usize, 20, 40, 80, 160] {
        let config = AccelConfig {
            channels_per_board: channels,
            ..AccelConfig::paper_4board()
        };
        let peak = config.peak_flops() / 1e12;
        let machine = EtaAccel::new(config, ArchKind::DynArch);
        let report = machine.simulate(&shape, &eff);
        let t0 = *first_time.get_or_insert(report.time_s);
        let c0 = *first_channels.get_or_insert(channels);
        let speedup = t0 / report.time_s;
        let ideal = channels as f64 / c0 as f64;
        table.row(&[
            channels.to_string(),
            fmt(peak, 1),
            fmt(report.tflops, 2),
            fmt(speedup, 2),
            fmt(speedup / ideal, 2),
        ]);
    }
    table.print();
    println!(
        "paper claim: near-linear throughput scaling with channel count\n\
         within thermal/power/area limits; at very high channel counts the\n\
         HBM bandwidth bound flattens the curve (scaling eff. < 1), which\n\
         is exactly why the DMA compression matters at scale."
    );
}
