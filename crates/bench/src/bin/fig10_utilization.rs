//! Figure 10 (qualitative) — the execution timeline that motivates the
//! R2A scheduler: under static computational-resource allocation the EW
//! logic idles while MatMul runs (and vice versa); dynamic allocation
//! keeps all PEs busy.

use eta_accel::timeline::{trace_instrumented, Alloc, CellKernels};
use eta_bench::table::pct;

fn render(label: &str, tl: &eta_accel::timeline::Timeline, scale: f64) {
    println!("-- {label} (utilization {}) --", pct(tl.utilization));
    for seg in tl.segments.iter().take(8) {
        let width = ((seg.duration() / scale) as usize).max(1);
        let fill = (seg.busy_fraction * 10.0).round() as usize;
        let bar: String = std::iter::repeat_n('#', fill)
            .chain(std::iter::repeat_n('.', 10 - fill))
            .collect();
        println!(
            "  {:>7} cyc {:<6} busy [{bar}] x{width}",
            format!("{:.0}", seg.duration()),
            seg.kind
        );
    }
    println!();
}

fn main() {
    let (telemetry, _trace) = eta_bench::instrumentation_from_env("fig10_utilization");
    // Three cells of a reordered (MS1) forward phase: heavy MatMul
    // followed by a significant EW burst.
    let cells = vec![
        CellKernels {
            mm_ops: 800_000,
            ew_ops: 200_000,
        };
        3
    ];
    let ops_per_cycle = 1024.0;

    let stat = trace_instrumented(
        &cells,
        ops_per_cycle,
        Alloc::Static { ew_fraction: 0.4 },
        telemetry.as_ref(),
    );
    let dynamic = trace_instrumented(&cells, ops_per_cycle, Alloc::Dynamic, telemetry.as_ref());

    println!(
        "== Fig. 10 — kernel timeline, static vs dynamic allocation ==\n\
         (each row is one kernel; the bar shows the busy PE fraction)\n"
    );
    render("Static allocation (60/40 MatMul/EW split)", &stat, 80.0);
    render("R2A dynamic allocation (swing PEs)", &dynamic, 80.0);
    println!(
        "static makespan {:.0} cycles vs dynamic {:.0} — the paper's\n\
         'low logic utilization / idle time of EW' gap ({}).",
        stat.makespan,
        dynamic.makespan,
        pct(stat.makespan / dynamic.makespan - 1.0)
    );
    if let Some(t) = telemetry {
        t.flush();
    }
}
