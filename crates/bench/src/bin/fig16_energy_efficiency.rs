//! Figure 16 — normalized energy efficiency of the hardware design
//! points against the GPU baseline.
//!
//! Paper headlines: LSTM-Inf is always below the baseline; Static-Arch
//! only wins when the workload matches its partition; Dyn-Arch always
//! wins, averaging 1.67× (up to 2.69×).

use eta_accel::arch::{AccelConfig, ArchKind, EtaAccel};
use eta_bench::table::fmt;
use eta_bench::{baseline_gpu, geomean, Table};
use eta_memsim::model::OptEffects;
use eta_workloads::Benchmark;

fn main() {
    let gpu = baseline_gpu();
    let kinds = [ArchKind::LstmInf, ArchKind::StaticArch, ArchKind::DynArch];
    let mut headers: Vec<String> = vec!["design".to_string()];
    headers.extend(Benchmark::ALL.iter().map(|b| b.spec().name.to_string()));
    headers.push("geomean".to_string());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut table = Table::new(
        "Fig. 16 — normalized energy efficiency vs GPU baseline (higher is better)",
        &header_refs,
    );
    // Baseline row is 1.0 by definition.
    let mut base_row = vec!["Baseline (V100)".to_string()];
    base_row.extend(std::iter::repeat_n("1.00".to_string(), 6));
    base_row.push("1.00".to_string());
    table.row(&base_row);

    for kind in kinds {
        let machine = EtaAccel::new(AccelConfig::paper_4board(), kind);
        let mut effs = Vec::new();
        for b in Benchmark::ALL {
            let shape = b.spec().shape();
            let gpu_est = gpu.estimate(&shape, &OptEffects::baseline());
            let acc = machine.simulate(&shape, &OptEffects::baseline());
            // Energy efficiency = performance per watt, i.e.
            // (1/t)/(E/t) relative to the GPU — speedup x energy ratio.
            let speedup = gpu_est.time_s / acc.time_s;
            effs.push(speedup * gpu_est.energy_j / acc.energy_j());
        }
        let mut row = vec![kind.label().to_string()];
        row.extend(effs.iter().map(|&e| fmt(e, 2)));
        row.push(fmt(geomean(&effs), 2));
        table.row(&row);
    }
    table.print();
    println!(
        "paper: LSTM-Inf always below baseline; Static-Arch only above it\n\
         when the workload matches the TREC10-derived partition; Dyn-Arch\n\
         always above, averaging 1.67x (up to 2.69x)."
    );
}
