//! Table III — the adder-based streaming accumulator vs the Xilinx
//! floating-point accumulator IP: synthesis resources, dynamic power,
//! and latency (with the drain-overhead claim checked by cycle-accurate
//! simulation).

use eta_accel::accumulator::{AccumulatorResources, AccumulatorSim};
use eta_bench::table::pct;
use eta_bench::Table;

fn main() {
    let ip = AccumulatorResources::xilinx_ip();
    let ours = AccumulatorResources::eta_design();

    let mut table = Table::new(
        "Table III — accumulator implementations",
        &["design", "LUT", "FF", "dyn power (W)", "latency (cycles)"],
    );
    for r in [&ip, &ours] {
        table.row(&[
            r.name.clone(),
            r.lut.to_string(),
            r.ff.to_string(),
            format!("{:.3}", r.dynamic_power_w),
            r.latency_cycles.to_string(),
        ]);
    }
    table.print();

    println!(
        "savings of the adder-based design vs the Xilinx IP:\n\
         LUT {} (paper 43.61%), FF {} (paper 37.25%), power {} (paper 17%)\n",
        pct(ours.lut_saving_vs(&ip)),
        pct(ours.ff_saving_vs(&ip)),
        pct(ours.power_saving_vs(&ip)),
    );

    // The latency trade-off, verified by simulation.
    let sim = AccumulatorSim::new(8);
    let mut lat = Table::new(
        "Measured streaming latency (8-cycle adder)",
        &["inputs", "cycles", "overhead vs ideal"],
    );
    for n in [128usize, 512, 1024, 2048, 8192] {
        let run = sim.run(&vec![1.0f32; n]);
        lat.row(&[
            n.to_string(),
            run.cycles.to_string(),
            pct(run.drain_overhead(n as u64, 8)),
        ]);
    }
    lat.print();
    println!(
        "paper: the higher drain latency costs <2.87% for accumulations of\n\
         more than 1024 streaming inputs — included in the overall results."
    );
}
