//! Table I — the six large LSTM training benchmarks, their model
//! configurations, and the derived per-benchmark quantities the rest of
//! the harness uses (loss structure, MS2 skip fraction, model size).

use eta_bench::skip_fraction;
use eta_bench::table::{gb, pct};
use eta_bench::Table;
use eta_lstm_core::LossKind;
use eta_workloads::Benchmark;

fn main() {
    let mut table = Table::new(
        "Table I — large LSTM training benchmarks",
        &[
            "name",
            "abbr",
            "hidden",
            "layers",
            "length",
            "loss",
            "params (GB)",
            "MS2 skip",
        ],
    );
    for b in Benchmark::ALL {
        let spec = b.spec();
        let shape = spec.shape();
        table.row(&[
            spec.name.to_string(),
            spec.abbr.to_string(),
            spec.hidden.to_string(),
            spec.layers.to_string(),
            spec.seq_len.to_string(),
            match spec.loss_kind {
                LossKind::SingleLoss => "single".to_string(),
                LossKind::PerTimestamp => "per-timestamp".to_string(),
            },
            gb(shape.weight_bytes()),
            pct(skip_fraction(b)),
        ]);
    }
    table.print();
    println!(
        "configurations match the paper's Table I exactly; the loss\n\
         structure column drives the MS2 β sign (Fig. 8), and the skip\n\
         fraction is the Eq. 4 plan at the default threshold."
    );
}
