//! Ablation — the Eq. 5 historic loss predictor: how well
//! `pred_loss_n = loss_{n-1} − (loss_{n-2} − loss_{n-1})² /
//! (loss_{n-3} − loss_{n-2})` tracks a real training curve, which is
//! what lets MS2 plan its skips *before* the forward pass.

use eta_bench::table::{fmt, pct};
use eta_bench::{scaled_config, scaled_task, Table, SEED};
use eta_lstm_core::ms2::LossHistory;
use eta_lstm_core::{Trainer, TrainingStrategy};
use eta_workloads::Benchmark;

fn main() {
    let cfg = scaled_config(Benchmark::Imdb);
    let task = scaled_task(Benchmark::Imdb).with_batches_per_epoch(8);
    let mut trainer = Trainer::new(cfg, TrainingStrategy::Baseline, SEED)
        .expect("trainer")
        .with_parallelism(eta_bench::engine_from_env());
    let report = trainer.run(&task, 12).expect("training");

    let mut history = LossHistory::new();
    let mut table = Table::new(
        "Eq. 5 loss prediction vs measured (scaled IMDB analogue)",
        &["epoch", "measured loss", "predicted", "relative error"],
    );
    let mut errors = Vec::new();
    for (epoch, e) in report.epochs.iter().enumerate() {
        let predicted = history.predict_next();
        let cell = match predicted {
            Some(p) => {
                let err = (p - e.mean_loss).abs() / e.mean_loss.max(1e-9);
                errors.push(err);
                (fmt(p, 4), pct(err))
            }
            None => ("warm-up".to_string(), "-".to_string()),
        };
        table.row(&[epoch.to_string(), fmt(e.mean_loss, 4), cell.0, cell.1]);
        history.push(e.mean_loss);
    }
    table.print();
    let mean_err = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
    println!(
        "mean relative prediction error after warm-up: {} — accurate enough\n\
         to rank BP-cell significance before the forward pass (the Eq. 4\n\
         skip decision under a relative threshold is insensitive to the\n\
         residual loss-prediction error).",
        pct(mean_err)
    );
}
