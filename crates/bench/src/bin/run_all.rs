//! Convenience runner: regenerates every figure/table/ablation output
//! in sequence (the same binaries `results/` is built from), printing
//! each to stdout with a separator.
//!
//! `cargo run --release -p eta-bench --bin run_all [-- --telemetry <dir>] [--trace <dir>] [--threads N]`
//!
//! With `--telemetry <dir>`, every child binary writes a JSONL
//! telemetry stream to `<dir>/<binary>.jsonl` (manifest line first;
//! see DESIGN.md "Observability" for the schema).
//!
//! With `--trace <dir>`, every instrumented child additionally writes
//! `<dir>/<binary>.trace.json` (Chrome trace-event JSON — load it at
//! <https://ui.perfetto.dev>) and `<dir>/<binary>.folded.txt`
//! (collapsed stacks for flamegraph tools). Tracing rides on the
//! telemetry span hooks; with `--trace` alone an in-memory telemetry
//! handle is constructed so spans still flow (no JSONL is written
//! unless `--telemetry` is also given).
//!
//! With `--threads N` (default: the machine's available parallelism),
//! every child trains under the data-parallel engine with `N` worker
//! threads (exported as `ETA_THREADS`). Thread count never changes the
//! printed numbers — the microbatch shard count is fixed — only the
//! wall-clock time.

use std::path::PathBuf;
use std::process::Command;

struct Args {
    telemetry_dir: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    threads: usize,
}

/// Every harness binary, in paper order.
pub const ALL_BINARIES: [&str; 20] = [
    "table01_benchmarks",
    "fig03_gpu_scaling",
    "fig04_data_movement",
    "fig05_footprint",
    "fig06_value_distribution",
    "fig08_gradient_magnitude",
    "fig10_utilization",
    "fig11_accumulator_timing",
    "fig15_speedup_energy",
    "fig16_energy_efficiency",
    "fig17_dm_reduction",
    "fig18_footprint_reduction",
    "ms3_matrix",
    "table02_accuracy",
    "table03_accumulator",
    "ablation_ms1_threshold",
    "ablation_ms2_threshold",
    "ablation_static_partition",
    "ablation_accumulator_latency",
    "ablation_loss_predictor",
];

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn parse_args() -> Args {
    let mut telemetry_dir = None;
    let mut trace_dir = None;
    let mut threads = default_threads();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--telemetry" => {
                let dir = args.next().unwrap_or_else(|| {
                    eprintln!("--telemetry needs a directory argument");
                    std::process::exit(2);
                });
                telemetry_dir = Some(PathBuf::from(dir));
            }
            "--trace" => {
                let dir = args.next().unwrap_or_else(|| {
                    eprintln!("--trace needs a directory argument");
                    std::process::exit(2);
                });
                trace_dir = Some(PathBuf::from(dir));
            }
            "--threads" => {
                let n = args.next().unwrap_or_else(|| {
                    eprintln!("--threads needs a count argument");
                    std::process::exit(2);
                });
                threads = n.parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs a positive integer, got {n:?}");
                    std::process::exit(2);
                });
                if threads == 0 {
                    eprintln!("--threads must be at least 1");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!(
                    "unknown argument: {other} \
                     (expected --telemetry <dir> | --trace <dir> | --threads <n>)"
                );
                std::process::exit(2);
            }
        }
    }
    Args {
        telemetry_dir,
        trace_dir,
        threads,
    }
}

fn main() {
    let args = parse_args();
    if let Some(dir) = &args.telemetry_dir {
        std::fs::create_dir_all(dir).expect("create telemetry directory");
    }
    if let Some(dir) = &args.trace_dir {
        std::fs::create_dir_all(dir).expect("create trace directory");
    }
    println!("worker threads: {} (ETA_THREADS)", args.threads);
    let exe = std::env::current_exe().expect("own path");
    let bin_dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    let mut run = |name: &'static str| {
        println!("\n================ {name} ================\n");
        let mut cmd = Command::new(bin_dir.join(name));
        cmd.env(eta_bench::THREADS_ENV, args.threads.to_string());
        if let Some(dir) = &args.telemetry_dir {
            cmd.env(eta_bench::TELEMETRY_DIR_ENV, dir);
        }
        if let Some(dir) = &args.trace_dir {
            cmd.env(eta_bench::TRACE_DIR_ENV, dir);
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            failures.push(name);
        }
    };
    for name in ALL_BINARIES {
        run(name);
    }
    // ablation_scalability is intentionally excluded from the default
    // sweep only if it were slow; it is fast, so run it too.
    run("ablation_scalability");
    if failures.is_empty() {
        println!("\nall harnesses completed");
        if let Some(dir) = &args.telemetry_dir {
            println!("telemetry streams in {}", dir.display());
        }
        if let Some(dir) = &args.trace_dir {
            println!(
                "traces in {} (load *.trace.json at https://ui.perfetto.dev)",
                dir.display()
            );
        }
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
