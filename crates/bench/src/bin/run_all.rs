//! Convenience runner: regenerates every figure/table/ablation output
//! in sequence (the same binaries `results/` is built from), printing
//! each to stdout with a separator.
//!
//! `cargo run --release -p eta-bench --bin run_all`

use std::process::Command;

/// Every harness binary, in paper order.
pub const ALL_BINARIES: [&str; 19] = [
    "table01_benchmarks",
    "fig03_gpu_scaling",
    "fig04_data_movement",
    "fig05_footprint",
    "fig06_value_distribution",
    "fig08_gradient_magnitude",
    "fig10_utilization",
    "fig11_accumulator_timing",
    "fig15_speedup_energy",
    "fig16_energy_efficiency",
    "fig17_dm_reduction",
    "fig18_footprint_reduction",
    "table02_accuracy",
    "table03_accumulator",
    "ablation_ms1_threshold",
    "ablation_ms2_threshold",
    "ablation_static_partition",
    "ablation_accumulator_latency",
    "ablation_loss_predictor",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let bin_dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in ALL_BINARIES {
        println!("\n================ {name} ================\n");
        let status = Command::new(bin_dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            failures.push(name);
        }
    }
    // ablation_scalability is intentionally excluded from the default
    // sweep only if it were slow; it is fast, so run it too.
    println!("\n================ ablation_scalability ================\n");
    let status = Command::new(bin_dir.join("ablation_scalability"))
        .status()
        .expect("launch ablation_scalability");
    if !status.success() {
        failures.push("ablation_scalability");
    }
    if failures.is_empty() {
        println!("\nall harnesses completed");
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
