//! Figure 3 — GPU throughput (TFLOPS) and energy efficiency (GFLOPS/W)
//! when scaling LSTM model size along the three axes:
//! (a) hidden size, (b) layer number, (c) layer length.
//!
//! Paper shapes to reproduce: throughput rises then saturates with
//! hidden size while efficiency peaks and declines; throughput is flat
//! but efficiency falls with layer count (7/8-layer OOM on the 16 GB
//! RTX 5000); both fall with layer length.

use eta_bench::table::fmt;
use eta_bench::Table;
use eta_gpu::{GpuModel, GpuSpec};
use eta_memsim::model::{LstmShape, OptEffects};

fn row(table: &mut Table, label: &str, shape: &LstmShape, rtx: &GpuModel, v100: &GpuModel) {
    let base = OptEffects::baseline();
    let r = rtx.estimate(shape, &base);
    let v = v100.estimate(shape, &base);
    let cell = |fits: bool, value: f64, decimals: usize| {
        if fits {
            fmt(value, decimals)
        } else {
            "OOM".to_string()
        }
    };
    table.row(&[
        label.to_string(),
        cell(r.fits, r.tflops, 2),
        cell(v.fits, v.tflops, 2),
        cell(r.fits, r.gflops_per_watt, 1),
        cell(v.fits, v.gflops_per_watt, 1),
    ]);
}

fn main() {
    let rtx = GpuModel::new(GpuSpec::rtx5000());
    let v100 = GpuModel::new(GpuSpec::v100());
    let headers = [
        "config",
        "RTX TFLOPS",
        "V100 TFLOPS",
        "RTX GF/W",
        "V100 GF/W",
    ];

    // (a) hidden-size sweep: LN=3, LL=35 (PTB-style), batch 128.
    let mut a = Table::new("Fig. 3a — hidden size sweep (LN=3, LL=35)", &headers);
    for h in [256usize, 512, 1024, 2048, 3072] {
        row(
            &mut a,
            &format!("H{h}"),
            &LstmShape::new(h, h, 3, 35, 128),
            &rtx,
            &v100,
        );
    }
    a.print();
    println!(
        "paper shape: throughput climbs then saturates past H1024; energy\n\
         efficiency peaks mid-sweep and declines at H3072.\n"
    );

    // (b) layer-number sweep: H=2048, LL=35.
    let mut b = Table::new("Fig. 3b — layer number sweep (H=2048, LL=35)", &headers);
    for ln in 2..=8usize {
        row(
            &mut b,
            &format!("LN{ln}"),
            &LstmShape::new(2048, 2048, ln, 35, 128),
            &rtx,
            &v100,
        );
    }
    b.print();
    println!(
        "paper shape: near-flat throughput, falling efficiency; the 7- and\n\
         8-layer models cannot train on the 16 GB RTX 5000 (OOM).\n"
    );

    // (c) layer-length sweep: H=1024, LN=3.
    let mut c = Table::new("Fig. 3c — layer length sweep (H=1024, LN=3)", &headers);
    for ll in [18usize, 35, 100, 151, 303] {
        row(
            &mut c,
            &format!("LL{ll}"),
            &LstmShape::new(1024, 1024, 3, ll, 128),
            &rtx,
            &v100,
        );
    }
    c.print();
    println!("paper shape: throughput and energy efficiency both decline with layer length.");
}
