//! Central registry of every metric key the workspace emits.
//!
//! All counter/gauge/histogram names live here as `&'static str`
//! consts; call sites reference the const instead of retyping the
//! string, so a typo is a compile error instead of a silently forked
//! metric. The eta-lint `T1` rule closes the remaining gap: any
//! string literal passed to `incr`/`gauge`/`observe`/`counter_total`/
//! `histogram` outside this crate must appear in this file, so even
//! literal-using call sites (tests, one-off probes) cannot drift.
//!
//! Naming convention: `<subsystem>_<quantity>[_<unit>]`, with
//! monotonic counters suffixed `_total`.

// -- trainer (eta-lstm-core) -----------------------------------------------

/// Counter: completed training epochs.
pub const TRAIN_EPOCHS_TOTAL: &str = "train_epochs_total";
/// Counter: completed training batches.
pub const TRAIN_BATCHES_TOTAL: &str = "train_batches_total";
/// Gauge: mean loss of the most recent epoch.
pub const TRAIN_LOSS_MEAN: &str = "train_loss_mean";
/// Gauge: MS1 P1-pass density of the most recent epoch.
pub const MS1_P1_DENSITY: &str = "ms1_p1_density";
/// Gauge: MS2 cell-skip fraction of the most recent epoch.
pub const MS2_SKIP_FRACTION: &str = "ms2_skip_fraction";
/// Gauge: peak simulated-DRAM footprint over the run, bytes.
pub const TRAIN_PEAK_FOOTPRINT_BYTES: &str = "train_peak_footprint_bytes";
/// Gauge: peak footprint of the intermediates category alone, bytes.
pub const TRAIN_PEAK_INTERMEDIATES_BYTES: &str = "train_peak_intermediates_bytes";
/// Counter: cells recomputed from MS3 checkpoints during backward.
pub const MS3_RECOMPUTE_CELLS_TOTAL: &str = "ms3_recompute_cells_total";
/// Gauge: current MS3 dynamic loss scale.
pub const MS3_LOSS_SCALE: &str = "ms3_loss_scale";
/// Counter: optimizer steps skipped after a loss-scaled overflow.
pub const MS3_OVERFLOW_SKIPS_TOTAL: &str = "ms3_overflow_skips_total";
/// Counter: finite values that overflowed to ±∞ when narrowed to the
/// MS3 storage precision.
pub const MS3_CONV_OVERFLOWS_TOTAL: &str = "ms3_conv_overflows_total";
/// Counter: nonzero values flushed to zero when narrowed to the MS3
/// storage precision.
pub const MS3_CONV_UNDERFLOWS_TOTAL: &str = "ms3_conv_underflows_total";

// -- deterministic data-parallel engine (eta-lstm-core) --------------------

/// Gauge: microbatch shards used by the last sharded step.
pub const PARALLEL_SHARDS: &str = "parallel_shards";
/// Gauge: worker threads configured for the parallel engine.
pub const PARALLEL_THREADS: &str = "parallel_threads";
/// Gauge: wall seconds spent in the fixed-order tree reduction.
pub const PARALLEL_REDUCE_SECONDS: &str = "parallel_reduce_seconds";

// -- kernel layer: panel cache + workspace (eta-lstm-core) -----------------

/// Gauge: cumulative weight-panel pack operations performed by the
/// trainer's panel cache (one per layer per weight update).
pub const PANEL_PACK_COUNT: &str = "panel_pack_count";
/// Gauge: cumulative panel-cache checkouts served without repacking.
pub const PANEL_CACHE_HITS: &str = "panel_cache_hits";
/// Gauge: high-water mark of the reusable training workspace, bytes.
pub const WORKSPACE_HIGH_WATER_BYTES: &str = "workspace_high_water_bytes";

// -- memory simulator (eta-memsim) -----------------------------------------

/// Counter (labels: `category`): bytes allocated in simulated DRAM.
pub const MEMSIM_ALLOC_BYTES_TOTAL: &str = "memsim_alloc_bytes_total";
/// Counter (labels: `category`): bytes freed from simulated DRAM.
pub const MEMSIM_FREE_BYTES_TOTAL: &str = "memsim_free_bytes_total";
/// Gauge (labels: `category`): currently-live simulated bytes.
pub const MEMSIM_LIVE_BYTES: &str = "memsim_live_bytes";
/// Gauge: high-water mark of total live simulated bytes.
pub const MEMSIM_PEAK_TOTAL_BYTES: &str = "memsim_peak_total_bytes";
/// Counter (labels: `category`): simulated bytes read from DRAM.
pub const DRAM_READ_BYTES_TOTAL: &str = "dram_read_bytes_total";
/// Counter (labels: `category`): simulated bytes written to DRAM.
pub const DRAM_WRITE_BYTES_TOTAL: &str = "dram_write_bytes_total";

// -- accelerator simulator (eta-accel) -------------------------------------

/// Histogram: per-PE busy fraction across an iteration.
pub const ACCEL_PE_BUSY_FRACTION: &str = "accel_pe_busy_fraction";
/// Counter: swing-buffer handoffs between timeline segments.
pub const ACCEL_SWING_HANDOFFS_TOTAL: &str = "accel_swing_handoffs_total";
/// Gauge: utilization derived from the executed timeline.
pub const ACCEL_TIMELINE_UTILIZATION: &str = "accel_timeline_utilization";
/// Gauge (labels: run config): end-to-end utilization of a simulated run.
pub const ACCEL_UTILIZATION: &str = "accel_utilization";
/// Gauge (labels: run config): simulated seconds per training iteration.
pub const ACCEL_ITERATION_SECONDS: &str = "accel_iteration_seconds";
/// Gauge (labels: run config): simulated seconds spent in DMA.
pub const ACCEL_DMA_SECONDS: &str = "accel_dma_seconds";
/// Gauge (labels: run config): achieved TFLOP/s of a simulated run.
pub const ACCEL_TFLOPS: &str = "accel_tflops";
/// Gauge (labels: run config): total energy of a simulated run, joules.
pub const ACCEL_ENERGY_JOULES: &str = "accel_energy_joules";
/// Counter (labels: run config): DRAM traffic of a simulated run, bytes.
pub const ACCEL_TRAFFIC_BYTES_TOTAL: &str = "accel_traffic_bytes_total";
/// Counter (labels: `compressed`): bytes written by the DMA engine.
pub const ACCEL_DMA_WRITE_BYTES_TOTAL: &str = "accel_dma_write_bytes_total";
/// Histogram: per-transfer DMA compression ratio.
pub const ACCEL_DMA_COMPRESSION_RATIO: &str = "accel_dma_compression_ratio";
/// Histogram: accumulator stall fraction per drain.
pub const ACCEL_ACCUMULATOR_STALL_FRACTION: &str = "accel_accumulator_stall_fraction";
/// Counter: total accumulator stall cycles.
pub const ACCEL_ACCUMULATOR_STALL_CYCLES_TOTAL: &str = "accel_accumulator_stall_cycles_total";

// -- kernel accounting + tracing (eta-tensor / eta-prof) -------------------

/// Counter: floating-point operations executed by the packed GEMM
/// kernels (2·m·k·n per call, epilogue-fused paths included).
pub const KERNEL_GEMM_FLOPS_TOTAL: &str = "kernel_gemm_flops_total";
/// Counter: logical operand bytes touched by the packed GEMM kernels
/// (A + packed-B + C, 4 bytes per element).
pub const KERNEL_GEMM_BYTES_TOTAL: &str = "kernel_gemm_bytes_total";
/// Counter: packed GEMM kernel invocations.
pub const KERNEL_GEMM_CALLS_TOTAL: &str = "kernel_gemm_calls_total";
/// Counter: GEMM calls routed to the AVX2+FMA microkernels by the
/// runtime feature/shape dispatch.
pub const KERNEL_SIMD_DISPATCH_TOTAL: &str = "kernel_simd_dispatch_total";
/// Counter: GEMM calls served by the scalar microkernels (small
/// shapes, `ETA_SIMD=off`, or missing CPU features).
pub const KERNEL_SCALAR_FALLBACK_TOTAL: &str = "kernel_scalar_fallback_total";
/// Counter: panel packs performed by the parallel packing path.
pub const PANEL_PACK_PARALLEL_TOTAL: &str = "panel_pack_parallel_total";
/// Counter: spans captured by an attached eta-prof tracer.
pub const TRACE_SPANS_TOTAL: &str = "trace_spans_total";
/// Counter: spans dropped by an attached eta-prof tracer after its
/// event cap was reached (never silently truncated).
pub const TRACE_SPANS_DROPPED_TOTAL: &str = "trace_spans_dropped_total";
/// Gauge: distinct threads observed by an attached eta-prof tracer.
pub const TRACE_THREADS: &str = "trace_threads";

// -- figure/table export harnesses (eta-bench) -----------------------------

/// Gauge (labels: `config`, `component`): footprint breakdown exported
/// by the Fig. 5 harness.
pub const FOOTPRINT_BYTES: &str = "footprint_bytes";

/// Every registered key, for exhaustiveness checks and tooling.
pub const ALL: &[&str] = &[
    TRAIN_EPOCHS_TOTAL,
    TRAIN_BATCHES_TOTAL,
    TRAIN_LOSS_MEAN,
    MS1_P1_DENSITY,
    MS2_SKIP_FRACTION,
    TRAIN_PEAK_FOOTPRINT_BYTES,
    TRAIN_PEAK_INTERMEDIATES_BYTES,
    MS3_RECOMPUTE_CELLS_TOTAL,
    MS3_LOSS_SCALE,
    MS3_OVERFLOW_SKIPS_TOTAL,
    MS3_CONV_OVERFLOWS_TOTAL,
    MS3_CONV_UNDERFLOWS_TOTAL,
    PARALLEL_SHARDS,
    PARALLEL_THREADS,
    PARALLEL_REDUCE_SECONDS,
    PANEL_PACK_COUNT,
    PANEL_CACHE_HITS,
    WORKSPACE_HIGH_WATER_BYTES,
    MEMSIM_ALLOC_BYTES_TOTAL,
    MEMSIM_FREE_BYTES_TOTAL,
    MEMSIM_LIVE_BYTES,
    MEMSIM_PEAK_TOTAL_BYTES,
    DRAM_READ_BYTES_TOTAL,
    DRAM_WRITE_BYTES_TOTAL,
    ACCEL_PE_BUSY_FRACTION,
    ACCEL_SWING_HANDOFFS_TOTAL,
    ACCEL_TIMELINE_UTILIZATION,
    ACCEL_UTILIZATION,
    ACCEL_ITERATION_SECONDS,
    ACCEL_DMA_SECONDS,
    ACCEL_TFLOPS,
    ACCEL_ENERGY_JOULES,
    ACCEL_TRAFFIC_BYTES_TOTAL,
    ACCEL_DMA_WRITE_BYTES_TOTAL,
    ACCEL_DMA_COMPRESSION_RATIO,
    ACCEL_ACCUMULATOR_STALL_FRACTION,
    ACCEL_ACCUMULATOR_STALL_CYCLES_TOTAL,
    KERNEL_GEMM_FLOPS_TOTAL,
    KERNEL_GEMM_BYTES_TOTAL,
    KERNEL_GEMM_CALLS_TOTAL,
    KERNEL_SIMD_DISPATCH_TOTAL,
    KERNEL_SCALAR_FALLBACK_TOTAL,
    PANEL_PACK_PARALLEL_TOTAL,
    TRACE_SPANS_TOTAL,
    TRACE_SPANS_DROPPED_TOTAL,
    TRACE_THREADS,
    FOOTPRINT_BYTES,
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn keys_are_unique() {
        let set: BTreeSet<&str> = ALL.iter().copied().collect();
        assert_eq!(set.len(), ALL.len(), "duplicate key in registry");
    }

    #[test]
    fn keys_follow_the_naming_convention() {
        for key in ALL {
            assert!(
                key.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "key `{key}` must be snake_case ascii"
            );
            assert!(
                !key.starts_with('_') && !key.ends_with('_') && !key.contains("__"),
                "key `{key}` has stray underscores"
            );
        }
    }

    #[test]
    fn counters_are_suffixed_total() {
        // Counters in this workspace are exactly the `_total` keys;
        // keep the suffix honest for anything that claims to be one.
        for key in ALL {
            if key.ends_with("_total") {
                assert!(
                    key.contains("bytes")
                        || key.contains("handoffs")
                        || key.contains("cycles")
                        || key.contains("epochs")
                        || key.contains("batches")
                        || key.contains("flops")
                        || key.contains("calls")
                        || key.contains("spans")
                        || key.contains("cells")
                        || key.contains("skips")
                        || key.contains("overflows")
                        || key.contains("underflows")
                        || key.contains("dispatch")
                        || key.contains("fallback")
                        || key.contains("pack"),
                    "`{key}` ends in _total but names no countable quantity"
                );
            }
        }
    }
}
