//! Pluggable telemetry sinks: in-memory capture for tests, and a JSONL
//! stream writer for offline analysis.

use crate::manifest::RunManifest;
use crate::metrics::{MetricSnapshot, Snapshot, SpanStats};
use serde::{Serialize, Value};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One telemetry occurrence delivered to sinks.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Run identity; always the first event a sink sees.
    Manifest(RunManifest),
    /// A span closed after `seconds` of wall time.
    Span {
        path: String,
        labels: Vec<(String, String)>,
        seconds: f64,
    },
    /// Final value of one metric, emitted at flush.
    Metric(MetricSnapshot),
    /// Aggregate stats of one span path, emitted at flush.
    SpanSummary(SpanStats),
}

impl Event {
    /// Flat JSONL encoding: every line is an object with a `type`
    /// field discriminating the payload.
    pub fn to_value(&self) -> Value {
        let tagged = |type_name: &str, mut fields: Vec<(String, Value)>| {
            let mut entries = vec![("type".to_string(), Value::Str(type_name.to_string()))];
            entries.append(&mut fields);
            Value::Map(entries)
        };
        match self {
            Event::Manifest(m) => tagged("manifest", vec![("run".into(), m.to_value())]),
            Event::Span {
                path,
                labels,
                seconds,
            } => tagged(
                "span",
                vec![
                    ("path".into(), Value::Str(path.clone())),
                    ("labels".into(), labels.to_value()),
                    ("seconds".into(), Value::Float(*seconds)),
                ],
            ),
            Event::Metric(m) => tagged("metric", vec![("metric".into(), m.to_value())]),
            Event::SpanSummary(s) => tagged("span_summary", vec![("span".into(), s.to_value())]),
        }
    }
}

/// Destination for telemetry events.
pub trait Sink: Send {
    /// Delivers one event; called on the producing thread.
    fn record(&mut self, event: &Event);

    /// Called by `Telemetry::flush` after final metric events were
    /// recorded; IO-backed sinks should persist here.
    fn flush(&mut self, snapshot: &Snapshot) {
        let _ = snapshot;
    }
}

/// Test-facing handle onto the events a [`MemorySink`] captured.
#[derive(Debug, Clone, Default)]
pub struct MemoryHandle {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemoryHandle {
    /// Copies out every event recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Sink that appends every event to a shared in-memory buffer.
#[derive(Debug, Default)]
pub struct MemorySink {
    handle: MemoryHandle,
}

impl MemorySink {
    pub fn new() -> (Self, MemoryHandle) {
        let sink = MemorySink::default();
        let handle = sink.handle.clone();
        (sink, handle)
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.handle
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

/// Sink that writes one JSON object per line to a file. The first
/// line is always the run manifest.
pub struct JsonlSink {
    writer: BufWriter<File>,
    path: PathBuf,
}

impl JsonlSink {
    /// Creates (truncating) the stream file at `path`.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(&path)?),
            path,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        if let Ok(line) = serde_json::to_string(&event.to_value()) {
            // A full disk surfaces at flush; per-event errors are not
            // worth failing a training run over.
            let _ = writeln!(self.writer, "{line}");
        }
    }

    fn flush(&mut self, _snapshot: &Snapshot) {
        let _ = self.writer.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_shares_events_with_handle() {
        let (mut sink, handle) = MemorySink::new();
        sink.record(&Event::Span {
            path: "a/b".into(),
            labels: vec![],
            seconds: 0.25,
        });
        let events = handle.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], Event::Span { path, .. } if path == "a/b"));
    }

    #[test]
    fn events_encode_with_type_tags() {
        let v = Event::Span {
            path: "epoch".into(),
            labels: vec![("i".into(), "3".into())],
            seconds: 1.5,
        }
        .to_value();
        assert_eq!(v.field("type").unwrap().as_str(), Some("span"));
        assert_eq!(v.field("path").unwrap().as_str(), Some("epoch"));
    }
}
