//! Human-readable summary table over a registry snapshot.

use crate::metrics::{MetricValue, Snapshot};
use std::fmt::Write as _;

/// Renders spans and metrics as two aligned text tables.
pub fn render_summary(snapshot: &Snapshot) -> String {
    let mut out = String::new();

    if !snapshot.spans.is_empty() {
        out.push_str("spans\n");
        let path_w = column_width("path", snapshot.spans.iter().map(|s| s.path.len()));
        let _ = writeln!(
            out,
            "  {:<path_w$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>12}",
            "path", "count", "total", "mean", "min", "max"
        );
        for s in &snapshot.spans {
            let _ = writeln!(
                out,
                "  {:<path_w$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>12}",
                s.path,
                s.count,
                fmt_seconds(s.total_s),
                fmt_seconds(s.mean_s()),
                fmt_seconds(s.min_s),
                fmt_seconds(s.max_s),
            );
        }
    }

    if !snapshot.metrics.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("metrics\n");
        let rows: Vec<(String, String)> = snapshot
            .metrics
            .iter()
            .map(|m| {
                let mut name = m.name.clone();
                if !m.labels.is_empty() {
                    let labels: Vec<String> =
                        m.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    let _ = write!(name, "{{{}}}", labels.join(","));
                }
                let value = match &m.value {
                    MetricValue::Counter { value } => value.to_string(),
                    MetricValue::Gauge { value } => format!("{value:.6}"),
                    MetricValue::Histogram { histogram: h } => format!(
                        "count={} mean={:.4} min={:.4} max={:.4}",
                        h.count,
                        h.mean(),
                        h.min,
                        h.max
                    ),
                };
                (name, value)
            })
            .collect();
        let name_w = column_width("name", rows.iter().map(|(n, _)| n.len()));
        let _ = writeln!(out, "  {:<name_w$}  value", "name");
        for (name, value) in rows {
            let _ = writeln!(out, "  {name:<name_w$}  {value}");
        }
    }

    if out.is_empty() {
        out.push_str("(no telemetry recorded)\n");
    }
    out
}

fn column_width(header: &str, lens: impl Iterator<Item = usize>) -> usize {
    lens.fold(header.len(), usize::max)
}

fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricSnapshot, SpanStats};

    #[test]
    fn renders_both_tables() {
        let snapshot = Snapshot {
            metrics: vec![MetricSnapshot {
                name: "train_batches_total".into(),
                labels: vec![("epoch".into(), "0".into())],
                value: MetricValue::Counter { value: 12 },
            }],
            spans: vec![SpanStats {
                path: "epoch/batch".into(),
                count: 12,
                total_s: 0.6,
                min_s: 0.04,
                max_s: 0.07,
            }],
        };
        let text = render_summary(&snapshot);
        assert!(text.contains("epoch/batch"));
        assert!(text.contains("train_batches_total{epoch=0}"));
        assert!(text.contains("12"));
    }

    #[test]
    fn empty_snapshot_says_so() {
        assert!(render_summary(&Snapshot::default()).contains("no telemetry"));
    }
}
