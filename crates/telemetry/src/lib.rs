//! eta-telemetry: unified tracing, metrics, and profiling for the
//! eta-LSTM stack.
//!
//! One [`Telemetry`] handle is threaded through the trainer, memory
//! simulator, and accelerator simulator. It exposes:
//!
//! - a metric registry of counters, gauges, and fixed-bucket
//!   histograms addressed by static name + key-value labels,
//! - hierarchical span timers ([`span!`]) with per-path aggregate
//!   statistics (count/total/min/max),
//! - a [`SpanObserver`] hook notified at every span open/close, the
//!   attachment point for `eta-prof`'s Chrome-trace recorder (the
//!   observer reads its own clock, so this crate stays free of any
//!   trace-format knowledge),
//! - pluggable [`Sink`]s: [`MemorySink`] for tests, [`JsonlSink`] for
//!   offline analysis, and [`render_summary`] for human eyes,
//! - a per-run [`RunManifest`] written at the top of every JSONL
//!   stream.
//!
//! Handles are `Clone + Send`; every operation takes `&self`, so one
//! handle can be shared across the whole stack.

pub mod keys;
mod manifest;
mod metrics;
mod sink;
mod summary;

pub use manifest::{config_hash, RunManifest};
pub use metrics::{
    HistogramSnapshot, Labels, MetricKey, MetricSnapshot, MetricValue, Snapshot, SpanStats,
    DEFAULT_BUCKETS,
};
pub use sink::{Event, JsonlSink, MemoryHandle, MemorySink, Sink};
pub use summary::render_summary;

use metrics::Registry;
use std::cell::RefCell;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

thread_local! {
    /// Names of the spans currently open on this thread, outermost
    /// first; used to build hierarchical paths like `epoch/batch/bp_p1`.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Receives a callback at every span open and close.
///
/// Observers run on the thread that owns the span, so a tracer can read
/// thread ids and its own monotonic clock at both edges. `enter_span`
/// fires after the span's name is pushed onto the thread's stack (so
/// `path` is the full hierarchical path); `exit_span` fires as the
/// guard drops, before the aggregate registry records the close.
pub trait SpanObserver: Send + Sync {
    /// A span opened; `path` is its full hierarchical path.
    fn enter_span(&self, name: &'static str, path: &str);
    /// The span named `name` (the most recent open on this thread)
    /// closed after `seconds` of wall time.
    fn exit_span(&self, name: &'static str, seconds: f64);
}

struct Inner {
    registry: Mutex<Registry>,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
    observer: Mutex<Option<Arc<dyn SpanObserver>>>,
    // Fast-path flag mirroring `observer.is_some()`: trace-only scopes
    // ([`Telemetry::scope`]) cost one relaxed load when no tracer is
    // attached.
    observed: AtomicBool,
    manifest: RunManifest,
}

/// Shared handle to one run's telemetry pipeline.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Telemetry {
    /// Creates a pipeline with no sinks; attach them with
    /// [`Telemetry::attach`].
    pub fn new(manifest: RunManifest) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                registry: Mutex::new(Registry::default()),
                sinks: Mutex::new(Vec::new()),
                observer: Mutex::new(None),
                observed: AtomicBool::new(false),
                manifest,
            }),
        }
    }

    /// Convenience constructor for tests: pipeline plus a handle onto
    /// everything it records.
    pub fn with_memory(manifest: RunManifest) -> (Self, MemoryHandle) {
        let telemetry = Telemetry::new(manifest);
        let (sink, handle) = MemorySink::new();
        telemetry.attach(Box::new(sink));
        (telemetry, handle)
    }

    /// Convenience constructor for binaries: pipeline writing a JSONL
    /// stream to `path`.
    ///
    /// # Errors
    ///
    /// Returns an error if the stream file cannot be created.
    pub fn with_jsonl(manifest: RunManifest, path: impl AsRef<Path>) -> std::io::Result<Self> {
        let telemetry = Telemetry::new(manifest);
        telemetry.attach(Box::new(JsonlSink::create(path)?));
        Ok(telemetry)
    }

    /// Attaches a sink; it immediately receives the run manifest.
    pub fn attach(&self, mut sink: Box<dyn Sink>) {
        sink.record(&Event::Manifest(self.inner.manifest.clone()));
        self.lock_sinks().push(sink);
    }

    pub fn manifest(&self) -> &RunManifest {
        &self.inner.manifest
    }

    // -- metrics ----------------------------------------------------

    /// Adds `delta` to the counter `name` with no labels.
    pub fn incr(&self, name: &'static str, delta: u64) {
        self.incr_with(name, Vec::new(), delta);
    }

    /// Adds `delta` to the counter `name` under `labels`.
    pub fn incr_with(&self, name: &'static str, labels: Labels, delta: u64) {
        self.lock_registry().incr(MetricKey { name, labels }, delta);
    }

    /// Sets the gauge `name` (no labels) to `value`.
    pub fn gauge(&self, name: &'static str, value: f64) {
        self.gauge_with(name, Vec::new(), value);
    }

    /// Sets the gauge `name` under `labels` to `value`.
    pub fn gauge_with(&self, name: &'static str, labels: Labels, value: f64) {
        self.lock_registry()
            .gauge(MetricKey { name, labels }, value);
    }

    /// Records `value` into the histogram `name` using
    /// [`DEFAULT_BUCKETS`].
    pub fn observe(&self, name: &'static str, value: f64) {
        self.observe_in(name, Vec::new(), DEFAULT_BUCKETS, value);
    }

    /// Records `value` into the histogram `name` under `labels` with
    /// explicit bucket upper bounds (used on first observation; later
    /// calls reuse the registered buckets).
    pub fn observe_in(&self, name: &'static str, labels: Labels, buckets: &[f64], value: f64) {
        self.lock_registry()
            .observe(MetricKey { name, labels }, buckets, value);
    }

    // -- spans ------------------------------------------------------

    /// Opens a span named `name`; it closes (and records its wall
    /// time) when the returned guard drops. Prefer the [`span!`]
    /// macro, which also attaches labels.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_with(name, Vec::new())
    }

    /// Opens a span with labels attached to its close event.
    pub fn span_with(&self, name: &'static str, labels: Labels) -> SpanGuard {
        self.open_span(name, labels, true, None)
    }

    /// Opens a span at the **root of a fresh per-thread stack**: the
    /// current stack is saved and restored when the guard drops, and
    /// nested spans build paths under `name` alone. The data-parallel
    /// engine uses this for its shard scopes, so a shard's span
    /// structure is identical whether the shard ran on a worker thread
    /// (empty stack) or inline on the caller (stack holding
    /// `epoch/batch/step`) — the anchor of the thread-count-invariant
    /// trace-structure contract.
    pub fn span_root(&self, name: &'static str) -> SpanGuard {
        let saved = SPAN_STACK.with(|stack| std::mem::take(&mut *stack.borrow_mut()));
        self.open_span(name, Vec::new(), true, Some(saved))
    }

    /// Opens a **trace-only scope**: `None` (no work at all beyond one
    /// atomic load) unless a [`SpanObserver`] is attached, and the
    /// resulting span feeds only the observer, never the aggregate
    /// registry or sinks. This is the hook for hot-path scopes (per-cell
    /// GEMM/epilogue/BP spans) that would be too numerous for the
    /// registry but are exactly what a trace viewer wants.
    pub fn scope(&self, name: &'static str) -> Option<SpanGuard> {
        if !self.tracing() {
            return None;
        }
        Some(self.open_span(name, Vec::new(), false, None))
    }

    fn open_span(
        &self,
        name: &'static str,
        labels: Labels,
        registry: bool,
        saved_stack: Option<Vec<&'static str>>,
    ) -> SpanGuard {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.join("/")
        });
        let observed = match self.observer() {
            Some(o) => {
                o.enter_span(name, &path);
                true
            }
            None => false,
        };
        SpanGuard {
            telemetry: self.clone(),
            name,
            path,
            labels,
            start: Instant::now(),
            registry,
            observed,
            saved_stack,
        }
    }

    // -- span observer ----------------------------------------------

    /// Attaches the span observer (replacing any previous one); every
    /// subsequent span open/close on any thread notifies it, and
    /// [`Telemetry::scope`] sites start emitting.
    pub fn set_span_observer(&self, observer: Arc<dyn SpanObserver>) {
        *self.lock_observer() = Some(observer);
        self.inner.observed.store(true, Ordering::Release);
    }

    /// Detaches the span observer; spans already open still notify it
    /// on close.
    pub fn clear_span_observer(&self) {
        self.inner.observed.store(false, Ordering::Release);
        *self.lock_observer() = None;
    }

    /// Whether a span observer is attached (i.e. a tracer is live).
    pub fn tracing(&self) -> bool {
        self.inner.observed.load(Ordering::Relaxed)
    }

    fn observer(&self) -> Option<Arc<dyn SpanObserver>> {
        if !self.tracing() {
            return None;
        }
        self.lock_observer().clone()
    }

    // -- output -----------------------------------------------------

    /// Freezes the registry: every metric and span aggregate at this
    /// instant.
    pub fn snapshot(&self) -> Snapshot {
        self.lock_registry().snapshot()
    }

    /// Emits final metric and span-summary events to every sink, then
    /// flushes them. Call once at the end of a run; safe to call more
    /// than once (sinks see one event per metric per flush).
    pub fn flush(&self) -> Snapshot {
        let snapshot = self.snapshot();
        let mut sinks = self.lock_sinks();
        for sink in sinks.iter_mut() {
            for metric in &snapshot.metrics {
                sink.record(&Event::Metric(metric.clone()));
            }
            for span in &snapshot.spans {
                sink.record(&Event::SpanSummary(span.clone()));
            }
            sink.flush(&snapshot);
        }
        snapshot
    }

    fn lock_registry(&self) -> std::sync::MutexGuard<'_, Registry> {
        self.inner
            .registry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn lock_sinks(&self) -> std::sync::MutexGuard<'_, Vec<Box<dyn Sink>>> {
        self.inner.sinks.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[allow(clippy::type_complexity)]
    fn lock_observer(&self) -> std::sync::MutexGuard<'_, Option<Arc<dyn SpanObserver>>> {
        self.inner
            .observer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn close_span(&self, path: &str, labels: &Labels, seconds: f64) {
        self.lock_registry().record_span(path, seconds);
        let mut sinks = self.lock_sinks();
        if !sinks.is_empty() {
            let event = Event::Span {
                path: path.to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                seconds,
            };
            for sink in sinks.iter_mut() {
                sink.record(&event);
            }
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("manifest", &self.inner.manifest)
            .finish_non_exhaustive()
    }
}

/// RAII guard of an open span; records wall time on drop.
pub struct SpanGuard {
    telemetry: Telemetry,
    name: &'static str,
    path: String,
    labels: Labels,
    start: Instant,
    // Trace-only scopes skip the aggregate registry and sinks.
    registry: bool,
    // Whether the observer saw this span's enter (so an observer
    // attached mid-span never receives an unmatched exit).
    observed: bool,
    // `span_root` saves the stack it displaced and restores it here.
    saved_stack: Option<Vec<&'static str>>,
}

impl SpanGuard {
    /// Full hierarchical path of this span (e.g. `epoch/batch`).
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        match self.saved_stack.take() {
            Some(saved) => SPAN_STACK.with(|stack| *stack.borrow_mut() = saved),
            None => SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            }),
        }
        let seconds = self.start.elapsed().as_secs_f64();
        if self.observed {
            if let Some(o) = self.telemetry.observer() {
                o.exit_span(self.name, seconds);
            }
        }
        if self.registry {
            self.telemetry.close_span(&self.path, &self.labels, seconds);
        }
    }
}

/// Builds a [`Labels`] vector: `labels!(epoch = i, kind = "fw")`.
#[macro_export]
macro_rules! labels {
    () => { ::std::vec::Vec::new() };
    ($($key:ident = $value:expr),+ $(,)?) => {
        ::std::vec![$((stringify!($key), ::std::string::ToString::to_string(&$value))),+]
    };
}

/// Opens a hierarchical span on `telemetry`:
/// `let _s = span!(t, "bp_p1", cell = tstep);`
#[macro_export]
macro_rules! span {
    ($telemetry:expr, $name:expr) => {
        $telemetry.span($name)
    };
    ($telemetry:expr, $name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $telemetry.span_with($name, $crate::labels!($($key = $value),+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_manifest() -> RunManifest {
        RunManifest::capture("telemetry_unit_test", "deadbeef".into(), 1)
    }

    #[test]
    fn counters_accumulate_per_label_set() {
        let t = Telemetry::new(test_manifest());
        t.incr("batches_total", 2);
        t.incr("batches_total", 3);
        t.incr_with("bytes_total", labels!(category = "weights"), 10);
        t.incr_with("bytes_total", labels!(category = "ew"), 4);
        let snap = t.snapshot();
        assert_eq!(snap.counter_total("batches_total"), 5);
        assert_eq!(snap.counter_total("bytes_total"), 14);
        assert_eq!(
            snap.metrics
                .iter()
                .filter(|m| m.name == "bytes_total")
                .count(),
            2
        );
    }

    #[test]
    fn gauges_keep_last_value() {
        let t = Telemetry::new(test_manifest());
        t.gauge("live_bytes", 100.0);
        t.gauge("live_bytes", 42.0);
        assert_eq!(t.snapshot().gauge("live_bytes"), Some(42.0));
    }

    #[test]
    fn histograms_bucket_and_aggregate() {
        let t = Telemetry::new(test_manifest());
        for v in [0.1, 0.4, 0.9, 0.95] {
            t.observe_in("busy", Vec::new(), &[0.25, 0.5, 1.0], v);
        }
        let snap = t.snapshot();
        let h = snap.histogram("busy").expect("histogram registered");
        assert_eq!(h.counts, vec![1, 1, 2]);
        assert_eq!(h.overflow, 0);
        assert_eq!(h.count, 4);
        assert!((h.mean() - 0.5875).abs() < 1e-12);
        assert_eq!(h.min, 0.1);
        assert_eq!(h.max, 0.95);
    }

    #[test]
    fn spans_nest_into_hierarchical_paths() {
        let t = Telemetry::new(test_manifest());
        for _ in 0..3 {
            let _epoch = span!(t, "epoch");
            for b in 0..2 {
                let _batch = span!(t, "batch", index = b);
            }
        }
        let snap = t.snapshot();
        assert_eq!(snap.span("epoch").unwrap().count, 3);
        let batch = snap.span("epoch/batch").unwrap();
        assert_eq!(batch.count, 6);
        assert!(batch.min_s <= batch.max_s);
        assert!(batch.total_s >= batch.max_s);
    }

    #[test]
    fn memory_sink_sees_manifest_spans_and_flush() {
        let (t, handle) = Telemetry::with_memory(test_manifest());
        {
            let _s = span!(t, "work");
        }
        t.incr("done_total", 1);
        t.flush();
        let events = handle.events();
        assert!(matches!(events[0], Event::Manifest(_)));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Span { path, .. } if path == "work")));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Metric(m) if m.name == "done_total"
                && m.value == MetricValue::Counter { value: 1 })));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::SpanSummary(s) if s.path == "work")));
    }

    #[test]
    fn jsonl_stream_starts_with_manifest_and_parses() {
        let dir = std::env::temp_dir().join("eta_telemetry_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream_unit.jsonl");
        let t = Telemetry::with_jsonl(test_manifest(), &path).unwrap();
        {
            let _s = span!(t, "phase", kind = "fw");
        }
        t.gauge("peak_bytes", 1234.0);
        t.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3);
        let first: serde::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.field("type").unwrap().as_str(), Some("manifest"));
        for line in &lines {
            let v: serde::Value = serde_json::from_str(line).unwrap();
            assert!(v.field("type").unwrap().as_str().is_some());
        }
        std::fs::remove_file(&path).ok();
    }

    #[derive(Default)]
    struct RecordingObserver {
        log: Mutex<Vec<String>>,
    }

    impl SpanObserver for RecordingObserver {
        fn enter_span(&self, _name: &'static str, path: &str) {
            self.log.lock().unwrap().push(format!("B {path}"));
        }
        fn exit_span(&self, name: &'static str, _seconds: f64) {
            self.log.lock().unwrap().push(format!("E {name}"));
        }
    }

    #[test]
    fn observer_sees_enter_exit_with_paths() {
        let t = Telemetry::new(test_manifest());
        let obs = Arc::new(RecordingObserver::default());
        t.set_span_observer(obs.clone());
        {
            let _epoch = span!(t, "epoch");
            let _batch = span!(t, "batch");
        }
        let log = obs.log.lock().unwrap().clone();
        assert_eq!(log, vec!["B epoch", "B epoch/batch", "E batch", "E epoch"]);
    }

    #[test]
    fn scope_is_none_without_observer_and_trace_only_with_one() {
        let t = Telemetry::new(test_manifest());
        assert!(t.scope("gemm").is_none());
        let obs = Arc::new(RecordingObserver::default());
        t.set_span_observer(obs.clone());
        {
            let _g = t.scope("gemm");
        }
        let log = obs.log.lock().unwrap().clone();
        assert_eq!(log, vec!["B gemm", "E gemm"]);
        // Trace-only scopes never reach the aggregate registry.
        assert!(t.snapshot().span("gemm").is_none());
        t.clear_span_observer();
        assert!(t.scope("gemm").is_none());
    }

    #[test]
    fn span_root_isolates_and_restores_the_stack() {
        let t = Telemetry::new(test_manifest());
        let _outer = span!(t, "epoch");
        {
            let root = t.span_root("shard");
            assert_eq!(root.path(), "shard");
            let inner = t.span("cell");
            assert_eq!(inner.path(), "shard/cell");
        }
        // The displaced stack is restored: new spans nest under epoch.
        let after = t.span("batch");
        assert_eq!(after.path(), "epoch/batch");
    }

    #[test]
    fn observer_attached_mid_span_gets_no_unmatched_exit() {
        let t = Telemetry::new(test_manifest());
        let obs = Arc::new(RecordingObserver::default());
        let guard = t.span("early");
        t.set_span_observer(obs.clone());
        drop(guard);
        assert!(obs.log.lock().unwrap().is_empty());
    }

    #[test]
    fn handles_share_state_across_clones_and_threads() {
        let t = Telemetry::new(test_manifest());
        let t2 = t.clone();
        std::thread::spawn(move || {
            t2.incr("cross_thread_total", 7);
        })
        .join()
        .unwrap();
        assert_eq!(t.snapshot().counter_total("cross_thread_total"), 7);
    }
}
