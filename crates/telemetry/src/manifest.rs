//! Per-run provenance: every JSONL stream starts with a manifest line
//! identifying the binary, configuration, seed, source revision, and
//! wall-clock start time.

use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// Identity of one telemetry-producing run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunManifest {
    /// Name of the producing binary or test.
    pub binary: String,
    /// Stable hash of the run configuration (see [`config_hash`]).
    pub config_hash: String,
    /// RNG seed the run was started with.
    pub seed: u64,
    /// `git describe --always --dirty` of the source tree, or
    /// "unknown" outside a git checkout.
    pub git_describe: String,
    /// Wall-clock start of the run, milliseconds since the Unix epoch.
    pub started_unix_ms: u64,
}

impl RunManifest {
    /// Captures a manifest for the calling process.
    pub fn capture(binary: &str, config_hash: String, seed: u64) -> Self {
        RunManifest {
            binary: binary.to_string(),
            config_hash,
            seed,
            git_describe: git_describe(),
            started_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
        }
    }
}

fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Stable FNV-1a hash of any serializable configuration, hex-encoded.
/// Uses the serde value tree, so field order and float formatting are
/// deterministic across runs of the same build.
pub fn config_hash<T: serde::Serialize>(config: &T) -> String {
    let encoded = serde_json::to_string(&config.to_value()).unwrap_or_default();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in encoded.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_fills_every_field() {
        let m = RunManifest::capture("unit_test", "abc".into(), 7);
        assert_eq!(m.binary, "unit_test");
        assert_eq!(m.seed, 7);
        assert!(!m.git_describe.is_empty());
        assert!(m.started_unix_ms > 0);
    }

    #[test]
    fn config_hash_is_stable_and_discriminating() {
        let a = config_hash(&vec![1u64, 2, 3]);
        let b = config_hash(&vec![1u64, 2, 3]);
        let c = config_hash(&vec![1u64, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = RunManifest::capture("rt", "00ff".into(), 42);
        let text = serde_json::to_string(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, m);
    }
}
