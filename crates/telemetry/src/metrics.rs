//! Metric registry: counters, gauges, and fixed-bucket histograms
//! addressed by a static name plus key-value labels.

use std::collections::HashMap;

/// Label set attached to a metric or span: static keys, owned values.
pub type Labels = Vec<(&'static str, String)>;

/// Default histogram buckets (upper bounds), spanning the ratios and
/// sub-second latencies the simulators produce. Callers with a known
/// domain should pass explicit buckets instead.
pub const DEFAULT_BUCKETS: &[f64] = &[
    0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 2.5, 10.0, 100.0,
];

/// One metric's identity inside the registry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MetricKey {
    pub name: &'static str,
    pub labels: Labels,
}

/// Current value of a metric.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum MetricValue {
    Counter { value: u64 },
    Gauge { value: f64 },
    Histogram { histogram: HistogramSnapshot },
}

/// Frozen view of a histogram: cumulative-style bucket counts plus
/// aggregate statistics.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Upper bounds of each bucket; values above the last bound land
    /// in the overflow count.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts, one per bound.
    pub counts: Vec<u64>,
    /// Observations above the last bound.
    pub overflow: u64,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, value: f64) {
        match self.bounds.iter().position(|&b| value <= b) {
            // position() came from bounds, and counts is built with
            // bounds.len() slots, so the slot always exists.
            Some(i) => match self.counts.get_mut(i) {
                Some(c) => *c += 1,
                None => self.overflow += 1,
            },
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            overflow: self.overflow,
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

/// Aggregate timing statistics for one span path.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpanStats {
    pub path: String,
    pub count: u64,
    pub total_s: f64,
    pub min_s: f64,
    pub max_s: f64,
}

impl SpanStats {
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s / self.count as f64
        }
    }
}

/// Frozen view of one registered metric.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricSnapshot {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: MetricValue,
}

/// Frozen view of the whole registry at one instant.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    pub metrics: Vec<MetricSnapshot>,
    pub spans: Vec<SpanStats>,
}

impl Snapshot {
    fn find(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Total over every label combination of counter `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .filter_map(|m| match &m.value {
                MetricValue::Counter { value } => Some(*value),
                _ => None,
            })
            .sum()
    }

    /// First gauge registered under `name`, any labels.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.find(name).and_then(|m| match &m.value {
            MetricValue::Gauge { value } => Some(*value),
            _ => None,
        })
    }

    /// First histogram registered under `name`, any labels.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.find(name).and_then(|m| match &m.value {
            MetricValue::Histogram { histogram } => Some(histogram),
            _ => None,
        })
    }

    /// Aggregate stats of the span whose full path is `path`.
    pub fn span(&self, path: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|s| s.path == path)
    }
}

/// Mutable store behind the `Telemetry` handle's mutex.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    metrics: HashMap<MetricKey, Slot>,
    spans: HashMap<String, SpanStats>,
}

impl Registry {
    pub(crate) fn incr(&mut self, key: MetricKey, delta: u64) {
        match self.metrics.entry(key).or_insert_with(|| Slot::Counter(0)) {
            Slot::Counter(v) => *v += delta,
            other => *other = Slot::Counter(delta),
        }
    }

    pub(crate) fn gauge(&mut self, key: MetricKey, value: f64) {
        self.metrics.insert(key, Slot::Gauge(value));
    }

    pub(crate) fn observe(&mut self, key: MetricKey, buckets: &[f64], value: f64) {
        match self
            .metrics
            .entry(key)
            .or_insert_with(|| Slot::Histogram(Histogram::new(buckets)))
        {
            Slot::Histogram(h) => h.observe(value),
            other => {
                let mut h = Histogram::new(buckets);
                h.observe(value);
                *other = Slot::Histogram(h);
            }
        }
    }

    pub(crate) fn record_span(&mut self, path: &str, seconds: f64) {
        let stats = self
            .spans
            .entry(path.to_string())
            .or_insert_with(|| SpanStats {
                path: path.to_string(),
                count: 0,
                total_s: 0.0,
                min_s: f64::INFINITY,
                max_s: 0.0,
            });
        stats.count += 1;
        stats.total_s += seconds;
        stats.min_s = stats.min_s.min(seconds);
        stats.max_s = stats.max_s.max(seconds);
    }

    pub(crate) fn snapshot(&self) -> Snapshot {
        let mut metrics: Vec<MetricSnapshot> = self
            .metrics
            .iter()
            .map(|(key, slot)| MetricSnapshot {
                name: key.name.to_string(),
                labels: key
                    .labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                value: match slot {
                    Slot::Counter(v) => MetricValue::Counter { value: *v },
                    Slot::Gauge(v) => MetricValue::Gauge { value: *v },
                    Slot::Histogram(h) => MetricValue::Histogram {
                        histogram: h.snapshot(),
                    },
                },
            })
            .collect();
        metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        let mut spans: Vec<SpanStats> = self.spans.values().cloned().collect();
        spans.sort_by(|a, b| a.path.cmp(&b.path));
        Snapshot { metrics, spans }
    }
}
