//! Per-shape roofline report over the paper's LN5–LN8 configurations.
//!
//! Two levels of entries, both bounded by the same measured machine
//! roofs (peak compute from an in-cache packed GEMM, memory bandwidth
//! from a streaming triad — measured by the bench harness, not
//! assumed):
//!
//! - **kernel entries** — one per GEMM orientation at the LSTM cell's
//!   dimensions (`nt` forward preactivation, `nn` backward data
//!   gradient, `tn` weight gradient). Achieved GFLOP/s comes from the
//!   measured packed-kernel median; the roof uses the kernel's
//!   *logical* arithmetic intensity `2mkn / 4(mk+kn+mn)`. The cell
//!   dimensions depend on batch and hidden width only, so these
//!   entries are shared by every LN configuration — the report states
//!   this rather than fabricating per-LN kernel variation.
//! - **shape entries** — one per LN5–LN8 training step. FLOPs come
//!   from the analytical model (`LstmShape::training_flops`), bytes
//!   from eta-memsim's DRAM traffic model, so arithmetic intensity is
//!   DRAM-level and genuinely varies with LN; achieved GFLOP/s is
//!   projected from the measured per-cell kernel times scaled by the
//!   shape's cell count.

use eta_memsim::model::{self, LstmShape, OptEffects};

/// Paper Table I scale shared by the LN sweep.
pub const LN_HIDDEN: usize = 2048;
/// Embedding width feeding layer 0.
pub const LN_INPUT: usize = 2048;
/// Unrolled timesteps per layer.
pub const LN_SEQ: usize = 35;
/// Minibatch size.
pub const LN_BATCH: usize = 128;

/// The LN5–LN8 shapes from Table I (hidden 2048, seq 35, batch 128).
pub fn ln_shapes() -> Vec<(String, LstmShape)> {
    (5..=8)
        .map(|ln| {
            (
                format!("LN{ln}"),
                LstmShape::new(LN_INPUT, LN_HIDDEN, ln, LN_SEQ, LN_BATCH),
            )
        })
        .collect()
}

/// The three GEMM orientations one LSTM cell executes, at `(m, k, n)`
/// for the given batch/hidden: `nt` is the forward preactivation
/// (`x·Wᵀ`), `nn` the backward data gradient (`δ·W`), `tn` the weight
/// gradient (`δᵀ·x`).
pub fn cell_gemm_dims(batch: usize, hidden: usize) -> [(&'static str, usize, usize, usize); 3] {
    [
        ("nt", batch, hidden, 4 * hidden),
        ("nn", batch, 4 * hidden, hidden),
        ("tn", 4 * hidden, batch, hidden),
    ]
}

/// Measured machine ceilings.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct MachineRoofs {
    /// Compute roof, GFLOP/s (in-cache packed GEMM).
    pub peak_gflops: f64,
    /// Memory bandwidth roof, GB/s (streaming triad).
    pub mem_bw_gbps: f64,
}

impl MachineRoofs {
    /// The roofline: `min(peak, bw × intensity)` GFLOP/s.
    pub fn roof_gflops(&self, intensity: f64) -> f64 {
        (self.mem_bw_gbps * intensity).min(self.peak_gflops)
    }
}

/// One measured kernel timing the bench harness feeds in.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct KernelMeasurement {
    /// GEMM orientation (`nt`/`nn`/`tn`).
    pub orientation: String,
    /// Output rows.
    pub m: usize,
    /// Reduction depth.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Median seconds of the naive reference kernel.
    pub naive_seconds: f64,
    /// Median seconds of the packed register-blocked kernel.
    pub packed_seconds: f64,
}

impl KernelMeasurement {
    /// Nominal FLOPs of one call (`2mkn`).
    pub fn flops(&self) -> u64 {
        2 * (self.m as u64) * (self.k as u64) * (self.n as u64)
    }

    /// Logical operand bytes of one call (`4(mk + kn + mn)`).
    pub fn bytes(&self) -> u64 {
        4 * ((self.m * self.k) as u64 + (self.k * self.n) as u64 + (self.m * self.n) as u64)
    }
}

/// Roofline entry for one GEMM orientation at cell dimensions.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct KernelEntry {
    /// GEMM orientation (`nt`/`nn`/`tn`).
    pub orientation: String,
    /// Output rows.
    pub m: usize,
    /// Reduction depth.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Nominal FLOPs per call.
    pub flops: u64,
    /// Logical operand bytes per call.
    pub bytes: u64,
    /// FLOPs per byte.
    pub intensity: f64,
    /// Measured packed-kernel GFLOP/s.
    pub achieved_gflops: f64,
    /// `min(peak, bw × intensity)` at this intensity.
    pub roof_gflops: f64,
    /// `achieved / roof`, in `[0, 1]` for a sound measurement.
    pub efficiency: f64,
    /// Packed vs naive median speedup.
    pub speedup: f64,
}

/// Roofline entry for one LN training-step shape.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ShapeEntry {
    /// Shape label (`LN5`…`LN8`).
    pub shape: String,
    /// Stacked layers.
    pub layers: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Unrolled timesteps.
    pub seq_len: usize,
    /// Minibatch rows.
    pub batch: usize,
    /// Analytical FLOPs of one training iteration.
    pub flops: u64,
    /// Modeled DRAM traffic of one iteration, bytes.
    pub traffic_bytes: u64,
    /// DRAM-level arithmetic intensity, FLOPs per byte.
    pub intensity: f64,
    /// GFLOP/s projected from measured per-cell kernel medians.
    pub achieved_gflops: f64,
    /// `min(peak, bw × intensity)` at this intensity.
    pub roof_gflops: f64,
    /// `achieved / roof`.
    pub efficiency: f64,
}

/// The full report: machine roofs + kernel + per-shape entries.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RooflineReport {
    /// Measured ceilings bounding every entry.
    pub machine: MachineRoofs,
    /// Per-orientation kernel entries (shared across LN shapes).
    pub kernels: Vec<KernelEntry>,
    /// Per-LN training-step entries.
    pub shapes: Vec<ShapeEntry>,
}

/// Builds the report from measured machine roofs and kernel timings.
/// Shape entries cover LN5–LN8 with baseline (no MS1/MS2) traffic.
pub fn build_report(machine: MachineRoofs, kernels: &[KernelMeasurement]) -> RooflineReport {
    let kernel_entries: Vec<KernelEntry> = kernels
        .iter()
        .map(|km| {
            let flops = km.flops();
            let bytes = km.bytes();
            let intensity = flops as f64 / bytes as f64;
            let achieved = if km.packed_seconds > 0.0 {
                flops as f64 / km.packed_seconds / 1e9
            } else {
                0.0
            };
            let roof = machine.roof_gflops(intensity);
            KernelEntry {
                orientation: km.orientation.clone(),
                m: km.m,
                k: km.k,
                n: km.n,
                flops,
                bytes,
                intensity,
                achieved_gflops: achieved,
                roof_gflops: roof,
                efficiency: if roof > 0.0 { achieved / roof } else { 0.0 },
                speedup: if km.packed_seconds > 0.0 {
                    km.naive_seconds / km.packed_seconds
                } else {
                    0.0
                },
            }
        })
        .collect();

    // One cell runs the forward preactivation GEMM pair (both `nt`)
    // plus, in backward, two `nn` and two `tn` GEMMs.
    let per_cell_seconds: f64 = kernels.iter().map(|km| km.packed_seconds * 2.0).sum();

    let shapes = ln_shapes()
        .into_iter()
        .map(|(label, shape)| {
            let flops = shape.training_flops();
            let traffic = model::traffic(&shape, &OptEffects::baseline()).total();
            let intensity = if traffic > 0 {
                flops as f64 / traffic as f64
            } else {
                0.0
            };
            let step_seconds = per_cell_seconds * shape.cells() as f64;
            let achieved = if step_seconds > 0.0 {
                flops as f64 / step_seconds / 1e9
            } else {
                0.0
            };
            let roof = machine.roof_gflops(intensity);
            ShapeEntry {
                shape: label,
                layers: shape.layers,
                hidden: shape.hidden,
                seq_len: shape.seq_len,
                batch: shape.batch,
                flops,
                traffic_bytes: traffic,
                intensity,
                achieved_gflops: achieved,
                roof_gflops: roof,
                efficiency: if roof > 0.0 { achieved / roof } else { 0.0 },
            }
        })
        .collect();

    RooflineReport {
        machine,
        kernels: kernel_entries,
        shapes,
    }
}

impl RooflineReport {
    /// Figure-style text table (kernels, then shapes).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "machine roofs: peak {:.2} GFLOP/s, bandwidth {:.2} GB/s\n\n",
            self.machine.peak_gflops, self.machine.mem_bw_gbps
        ));
        out.push_str("kernel (cell dims, shared across LN5-LN8)\n");
        out.push_str(
            "orient        m      k      n    AI f/B  achieved  roof GF/s  eff   speedup\n",
        );
        for e in &self.kernels {
            out.push_str(&format!(
                "{:<6} {:>7} {:>6} {:>6} {:>8.2} {:>9.2} {:>10.2} {:>5.2} {:>8.2}x\n",
                e.orientation,
                e.m,
                e.k,
                e.n,
                e.intensity,
                e.achieved_gflops,
                e.roof_gflops,
                e.efficiency,
                e.speedup
            ));
        }
        out.push_str("\ntraining step (DRAM-level intensity from eta-memsim)\n");
        out.push_str("shape  layers  GFLOP/iter  GB/iter  AI f/B  achieved  roof GF/s  eff\n");
        for e in &self.shapes {
            out.push_str(&format!(
                "{:<6} {:>6} {:>11.2} {:>8.3} {:>7.2} {:>9.2} {:>10.2} {:>5.2}\n",
                e.shape,
                e.layers,
                e.flops as f64 / 1e9,
                e.traffic_bytes as f64 / 1e9,
                e.intensity,
                e.achieved_gflops,
                e.roof_gflops,
                e.efficiency
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurements() -> Vec<KernelMeasurement> {
        cell_gemm_dims(LN_BATCH, LN_HIDDEN)
            .into_iter()
            .map(|(orient, m, k, n)| KernelMeasurement {
                orientation: orient.to_string(),
                m,
                k,
                n,
                naive_seconds: 0.4,
                packed_seconds: 0.1,
            })
            .collect()
    }

    #[test]
    fn report_covers_all_four_ln_shapes() {
        let report = build_report(
            MachineRoofs {
                peak_gflops: 50.0,
                mem_bw_gbps: 10.0,
            },
            &measurements(),
        );
        assert_eq!(report.kernels.len(), 3);
        assert_eq!(report.shapes.len(), 4);
        for (e, ln) in report.shapes.iter().zip(5..=8) {
            assert_eq!(e.shape, format!("LN{ln}"));
            assert_eq!(e.layers, ln);
            assert!(e.flops > 0);
            assert!(e.traffic_bytes > 0);
            assert!(e.achieved_gflops > 0.0);
            assert!(e.roof_gflops > 0.0);
        }
    }

    #[test]
    fn roof_is_min_of_compute_and_bandwidth() {
        let m = MachineRoofs {
            peak_gflops: 100.0,
            mem_bw_gbps: 10.0,
        };
        assert_eq!(m.roof_gflops(2.0), 20.0); // bandwidth-bound
        assert_eq!(m.roof_gflops(50.0), 100.0); // compute-bound
    }

    #[test]
    fn kernel_entries_compute_speedup_and_efficiency() {
        let report = build_report(
            MachineRoofs {
                peak_gflops: 50.0,
                mem_bw_gbps: 10.0,
            },
            &measurements(),
        );
        for e in &report.kernels {
            assert!((e.speedup - 4.0).abs() < 1e-12);
            assert!(e.efficiency > 0.0);
            assert!(e.intensity > 0.0);
        }
        // The three orientations are permutations of the same dims, so
        // their logical intensities coincide.
        let ai0 = report.kernels[0].intensity;
        for e in &report.kernels[1..] {
            assert!((e.intensity - ai0).abs() < 1e-9);
        }
    }

    #[test]
    fn report_serializes_and_renders() {
        let report = build_report(
            MachineRoofs {
                peak_gflops: 50.0,
                mem_bw_gbps: 10.0,
            },
            &measurements(),
        );
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: RooflineReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shapes.len(), 4);
        let table = report.render();
        assert!(table.contains("LN5") && table.contains("LN8"));
        assert!(table.contains("machine roofs"));
    }
}
