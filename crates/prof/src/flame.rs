//! Collapsed-stack flamegraph export.
//!
//! Replays each thread's begin/end events into `name;name;...` stack
//! lines with **self** microseconds (span duration minus time spent in
//! child spans), the format `flamegraph.pl` and `inferno-flamegraph`
//! consume. Identical stacks from different threads merge into one
//! line, so a flamegraph of a sharded run shows one `shard` subtree
//! with all shards' time folded together.

use std::collections::BTreeMap;

use crate::trace::{Phase, TraceEvent};

struct Frame {
    name: &'static str,
    start_us: u64,
    child_us: u64,
}

/// Renders events as collapsed-stack lines, sorted by stack name.
/// Unmatched opens (a tracer detached mid-span) are dropped rather
/// than guessed at.
pub fn folded(events: &[TraceEvent]) -> String {
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    let mut stacks: Vec<(u32, Vec<Frame>)> = Vec::new();
    for ev in events {
        let stack = match stacks.iter_mut().find(|(t, _)| *t == ev.tid) {
            Some((_, s)) => s,
            None => {
                stacks.push((ev.tid, Vec::new()));
                &mut stacks.last_mut().expect("just pushed").1
            }
        };
        match ev.ph {
            Phase::Begin => stack.push(Frame {
                name: ev.name,
                start_us: ev.ts_us,
                child_us: 0,
            }),
            Phase::End => {
                let Some(frame) = stack.pop() else { continue };
                let dur = ev.ts_us.saturating_sub(frame.start_us);
                let self_us = dur.saturating_sub(frame.child_us);
                if let Some(parent) = stack.last_mut() {
                    parent.child_us += dur;
                }
                let mut key = String::new();
                for f in stack.iter() {
                    key.push_str(f.name);
                    key.push(';');
                }
                key.push_str(frame.name);
                *totals.entry(key).or_insert(0) += self_us;
            }
        }
    }
    let mut out = String::new();
    for (stack, us) in totals {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ph: Phase, name: &'static str, tid: u32, ts_us: u64) -> TraceEvent {
        TraceEvent {
            ph,
            name,
            path: matches!(ph, Phase::Begin).then(|| name.to_string()),
            tid,
            ts_us,
        }
    }

    #[test]
    fn self_time_excludes_children() {
        let events = vec![
            ev(Phase::Begin, "outer", 1, 0),
            ev(Phase::Begin, "inner", 1, 10),
            ev(Phase::End, "inner", 1, 40),
            ev(Phase::End, "outer", 1, 100),
        ];
        let text = folded(&events);
        assert!(text.contains("outer 70\n"), "{text}");
        assert!(text.contains("outer;inner 30\n"), "{text}");
    }

    #[test]
    fn threads_merge_into_shared_stacks() {
        let events = vec![
            ev(Phase::Begin, "shard", 1, 0),
            ev(Phase::Begin, "shard", 2, 0),
            ev(Phase::End, "shard", 2, 5),
            ev(Phase::End, "shard", 1, 7),
        ];
        assert_eq!(folded(&events), "shard 12\n");
    }

    #[test]
    fn unmatched_events_are_dropped() {
        let events = vec![ev(Phase::End, "x", 1, 3)];
        assert_eq!(folded(&events), "");
    }
}
