//! Profiling subsystem layered on eta-telemetry: hierarchical span
//! tracing, per-shape roofline reports, and the perf-trajectory gate.
//!
//! Three pieces, each usable on its own:
//!
//! - [`trace`] — a [`Tracer`] implementing
//!   [`eta_telemetry::SpanObserver`]: attach it to a `Telemetry` handle
//!   and every span open/close anywhere in the process is recorded
//!   with monotonic timestamps and thread ids. A [`TraceSession`]
//!   wraps the attach/export lifecycle and writes both a Chrome
//!   trace-event JSON ([`chrome`], loadable in Perfetto or
//!   `chrome://tracing`) and a collapsed-stack flamegraph text file
//!   ([`flame`], consumable by `inferno`/`flamegraph.pl`).
//! - [`roofline`] — combines measured machine roofs (peak GFLOP/s,
//!   memory bandwidth) with the kernel FLOP/byte accounting from
//!   `eta_tensor::stats` and the analytical DRAM-traffic model from
//!   eta-memsim into a per-shape roofline report covering the paper's
//!   LN5–LN8 configurations.
//! - [`track`] — append-only bench history (`bench_history.jsonl`) and
//!   the `compare` gate that fails when a tracked median regresses
//!   beyond a threshold; the `eta-bench-track` binary fronts it in CI.
//!
//! Wall-clock reads live here by design: eta-prof is on the lint
//! D2/S2 exemption list with telemetry — timing must never feed
//! numerics, only reports.

pub mod chrome;
pub mod flame;
pub mod roofline;
pub mod trace;
pub mod track;

pub use chrome::{validate_chrome_trace, ChromeStats};
pub use roofline::{MachineRoofs, RooflineReport};
pub use trace::{TraceSession, Tracer};
pub use track::{compare, BenchRecord, CompareReport};
