//! `eta-bench-track` — the perf-trajectory CLI.
//!
//! ```text
//! eta-bench-track record  --bench-json BENCH_gemm.json \
//!     --history results/bench_history.jsonl [--sha <rev>]
//! eta-bench-track compare --bench-json BENCH_gemm.json \
//!     --history results/bench_history.jsonl [--threshold 0.10]
//! ```
//!
//! `record` appends the current bench medians to the history;
//! `compare` gates them against the last committed baseline and exits
//! non-zero with one line per offending shape when any median is more
//! than `threshold` slower. CI runs `compare` before `record` so a
//! regressing PR fails before it can re-baseline itself.

use std::path::PathBuf;
use std::process::ExitCode;

use eta_prof::track;

struct Args {
    command: String,
    bench_json: PathBuf,
    history: PathBuf,
    threshold: f64,
    sha: Option<String>,
}

const USAGE: &str = "usage: eta-bench-track <record|compare> \
    --bench-json <file> --history <file> [--threshold 0.10] [--sha <rev>]";

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or(USAGE)?;
    if command != "record" && command != "compare" {
        return Err(format!("unknown command `{command}`\n{USAGE}"));
    }
    let mut bench_json = None;
    let mut history = None;
    let mut threshold = 0.10f64;
    let mut sha = None;
    while let Some(flag) = argv.next() {
        let mut value = || {
            argv.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--bench-json" => bench_json = Some(PathBuf::from(value()?)),
            "--history" => history = Some(PathBuf::from(value()?)),
            "--threshold" => {
                threshold = value()?
                    .parse::<f64>()
                    .map_err(|e| format!("--threshold: {e}"))?;
                if !(0.0..10.0).contains(&threshold) {
                    return Err("--threshold must be in [0, 10)".to_string());
                }
            }
            "--sha" => sha = Some(value()?),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(Args {
        command,
        bench_json: bench_json.ok_or(format!("--bench-json is required\n{USAGE}"))?,
        history: history.ok_or(format!("--history is required\n{USAGE}"))?,
        threshold,
        sha,
    })
}

/// `git rev-parse --short HEAD`, or `unknown` outside a repo.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn run(args: &Args) -> Result<bool, String> {
    let text = std::fs::read_to_string(&args.bench_json)
        .map_err(|e| format!("{}: {e}", args.bench_json.display()))?;
    let sha = args.sha.clone().unwrap_or_else(git_sha);
    let current = track::records_from_bench_json(&text, &sha)?;
    match args.command.as_str() {
        "record" => {
            track::append(&args.history, &current)
                .map_err(|e| format!("{}: {e}", args.history.display()))?;
            println!(
                "recorded {} metric(s) @ {sha} into {}",
                current.len(),
                args.history.display()
            );
            Ok(true)
        }
        "compare" => {
            let history = track::read(&args.history)
                .map_err(|e| format!("{}: {e}", args.history.display()))?;
            let report = track::compare(&history, &current, args.threshold);
            print!("{}", report.render());
            Ok(report.passed())
        }
        _ => unreachable!("validated in parse_args"),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("eta-bench-track: {msg}");
            ExitCode::from(2)
        }
    }
}
