//! `eta-bench-track` — the perf-trajectory CLI.
//!
//! ```text
//! eta-bench-track record  --bench-json BENCH_gemm.json \
//!     --history results/bench_history.jsonl [--sha <rev>]
//! eta-bench-track compare --bench-json BENCH_gemm.json \
//!     --history results/bench_history.jsonl [--threshold 0.10]
//! eta-bench-track roofline --report results/roofline.json \
//!     --baseline results/roofline_baseline.json [--slack 0.10]
//! ```
//!
//! `record` appends the current bench medians to the history;
//! `compare` gates them against the last committed baseline and exits
//! non-zero with one line per offending shape when any median is more
//! than `threshold` slower. CI runs `compare` before `record` so a
//! regressing PR fails before it can re-baseline itself. `roofline`
//! gates a freshly re-derived `results/roofline.json` against the
//! committed baseline roof fractions and exits non-zero when any
//! kernel or LN5–LN8 shape drops below `baseline × (1 − slack)`.

use std::path::PathBuf;
use std::process::ExitCode;

use eta_prof::track;

struct Args {
    command: String,
    bench_json: Option<PathBuf>,
    history: Option<PathBuf>,
    report: Option<PathBuf>,
    baseline: Option<PathBuf>,
    threshold: f64,
    slack: f64,
    sha: Option<String>,
}

const USAGE: &str = "usage: eta-bench-track <record|compare> \
    --bench-json <file> --history <file> [--threshold 0.10] [--sha <rev>]\n\
       eta-bench-track roofline --report <file> --baseline <file> [--slack 0.10]";

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or(USAGE)?;
    if !matches!(command.as_str(), "record" | "compare" | "roofline") {
        return Err(format!("unknown command `{command}`\n{USAGE}"));
    }
    let mut bench_json = None;
    let mut history = None;
    let mut report = None;
    let mut baseline = None;
    let mut threshold = 0.10f64;
    let mut slack = 0.10f64;
    let mut sha = None;
    while let Some(flag) = argv.next() {
        let mut value = || {
            argv.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        let ratio = |flag: &str, raw: String| -> Result<f64, String> {
            let v = raw.parse::<f64>().map_err(|e| format!("{flag}: {e}"))?;
            if !(0.0..10.0).contains(&v) {
                return Err(format!("{flag} must be in [0, 10)"));
            }
            Ok(v)
        };
        match flag.as_str() {
            "--bench-json" => bench_json = Some(PathBuf::from(value()?)),
            "--history" => history = Some(PathBuf::from(value()?)),
            "--report" => report = Some(PathBuf::from(value()?)),
            "--baseline" => baseline = Some(PathBuf::from(value()?)),
            "--threshold" => threshold = ratio("--threshold", value()?)?,
            "--slack" => slack = ratio("--slack", value()?)?,
            "--sha" => sha = Some(value()?),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(Args {
        command,
        bench_json,
        history,
        report,
        baseline,
        threshold,
        slack,
        sha,
    })
}

/// `git rev-parse --short HEAD`, or `unknown` outside a repo.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn read_file(path: &PathBuf) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn require(opt: &Option<PathBuf>, flag: &str) -> Result<PathBuf, String> {
    opt.clone().ok_or(format!("{flag} is required\n{USAGE}"))
}

fn run(args: &Args) -> Result<bool, String> {
    if args.command == "roofline" {
        let report_path = require(&args.report, "--report")?;
        let baseline_path = require(&args.baseline, "--baseline")?;
        let current = track::roof_fractions_from_json(&read_file(&report_path)?)
            .map_err(|e| format!("{}: {e}", report_path.display()))?;
        let baseline = track::roof_fractions_from_json(&read_file(&baseline_path)?)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        let report = track::compare_roofline(&baseline, &current, args.slack);
        print!("{}", report.render());
        return Ok(report.passed());
    }
    let bench_json = require(&args.bench_json, "--bench-json")?;
    let history_path = require(&args.history, "--history")?;
    let text = read_file(&bench_json)?;
    let sha = args.sha.clone().unwrap_or_else(git_sha);
    let current = track::records_from_bench_json(&text, &sha)?;
    match args.command.as_str() {
        "record" => {
            track::append(&history_path, &current)
                .map_err(|e| format!("{}: {e}", history_path.display()))?;
            println!(
                "recorded {} metric(s) @ {sha} into {}",
                current.len(),
                history_path.display()
            );
            Ok(true)
        }
        "compare" => {
            let history = track::read(&history_path)
                .map_err(|e| format!("{}: {e}", history_path.display()))?;
            let report = track::compare(&history, &current, args.threshold);
            print!("{}", report.render());
            Ok(report.passed())
        }
        _ => unreachable!("validated in parse_args"),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("eta-bench-track: {msg}");
            ExitCode::from(2)
        }
    }
}
