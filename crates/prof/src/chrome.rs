//! Chrome trace-event JSON export and structural validation.
//!
//! The export uses paired `B`/`E` (duration begin/end) events — the
//! append-only encoding, no backpatching of durations — in the JSON
//! object format `{"traceEvents": [...]}` that Perfetto and
//! `chrome://tracing` load directly. Timestamps are microseconds
//! (the format's unit), `pid` is constant 1, and each event carries
//! the recording thread's stable id as `tid`; `B` events attach the
//! span's hierarchical path under `args.path`.
//!
//! [`validate_chrome_trace`] is the round-trip check the tests and CI
//! use: it re-parses the JSON and verifies the event stream is
//! structurally sound — every `E` matches the innermost open `B` on
//! its thread (no exit-before-enter, proper LIFO nesting), timestamps
//! never run backwards per thread, nothing is left open, and every
//! nested path resolves to its parent span on the same thread.

use std::collections::BTreeSet;

use serde::Value;

use crate::trace::{Phase, TraceEvent};

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Renders recorded events as Chrome trace-event JSON.
pub fn export(events: &[TraceEvent]) -> String {
    let trace_events: Vec<Value> = events
        .iter()
        .map(|ev| {
            let mut fields = vec![
                ("name", Value::Str(ev.name.to_string())),
                ("cat", Value::Str("eta".to_string())),
                (
                    "ph",
                    Value::Str(match ev.ph {
                        Phase::Begin => "B".to_string(),
                        Phase::End => "E".to_string(),
                    }),
                ),
                ("ts", Value::UInt(ev.ts_us)),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(ev.tid as u64)),
            ];
            if let Some(path) = &ev.path {
                fields.push(("args", map(vec![("path", Value::Str(path.clone()))])));
            }
            map(fields)
        })
        .collect();
    let root = map(vec![("traceEvents", Value::Seq(trace_events))]);
    serde_json::to_string(&root).expect("value tree serializes")
}

/// Summary statistics of a validated trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeStats {
    /// Total events (begin + end).
    pub events: usize,
    /// Complete spans (begin events, all matched).
    pub spans: usize,
    /// Distinct thread ids.
    pub threads: usize,
}

struct OpenSpan {
    name: String,
    path: String,
}

/// Parses Chrome trace-event JSON and verifies its span structure.
///
/// # Errors
///
/// Returns a description of the first structural defect: malformed
/// JSON, an unknown phase, an `E` without a matching open `B` on the
/// same thread, a name mismatch at close (broken LIFO nesting), a
/// per-thread timestamp running backwards, a nested span whose path
/// does not extend its innermost open ancestor, or spans left open at
/// the end of the stream.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeStats, String> {
    let root: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = match root.get("traceEvents") {
        Some(Value::Seq(events)) => events,
        _ => return Err("missing `traceEvents` array".to_string()),
    };

    // Per-tid open-span stacks and last-seen timestamps.
    let mut stacks: Vec<(u64, Vec<OpenSpan>)> = Vec::new();
    let mut last_ts: Vec<(u64, u64)> = Vec::new();
    let mut tids = BTreeSet::new();
    let mut spans = 0usize;

    for (idx, ev) in events.iter().enumerate() {
        let field_str = |key: &str| -> Result<&str, String> {
            ev.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("event {idx}: missing string `{key}`"))
        };
        let field_u64 = |key: &str| -> Result<u64, String> {
            ev.get(key)
                .and_then(Value::as_f64)
                .map(|v| v as u64)
                .ok_or_else(|| format!("event {idx}: missing number `{key}`"))
        };
        let name = field_str("name")?;
        let ph = field_str("ph")?;
        let ts = field_u64("ts")?;
        let tid = field_u64("tid")?;
        tids.insert(tid);

        match last_ts.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, last)) => {
                if ts < *last {
                    return Err(format!(
                        "event {idx}: timestamp {ts} runs backwards on tid {tid} (last {last})"
                    ));
                }
                *last = ts;
            }
            None => last_ts.push((tid, ts)),
        }

        let stack = match stacks.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, s)) => s,
            None => {
                stacks.push((tid, Vec::new()));
                &mut stacks.last_mut().expect("just pushed").1
            }
        };

        match ph {
            "B" => {
                let path = ev
                    .get("args")
                    .and_then(|a| a.get("path"))
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {idx}: B event without args.path"))?;
                // A nested path must extend the innermost open span on
                // this thread; a root path (no '/') opens a fresh
                // hierarchy (e.g. shard roots) and needs no parent.
                if path.contains('/') {
                    let parent = stack.last().ok_or_else(|| {
                        format!("event {idx}: nested `{path}` with no open parent")
                    })?;
                    let expected = format!("{}/{}", parent.path, name);
                    if *path != expected {
                        return Err(format!(
                            "event {idx}: path `{path}` does not extend parent `{}`",
                            parent.path
                        ));
                    }
                }
                stack.push(OpenSpan {
                    name: name.to_string(),
                    path: path.to_string(),
                });
                spans += 1;
            }
            "E" => {
                let open = stack
                    .pop()
                    .ok_or_else(|| format!("event {idx}: E `{name}` before any B on tid {tid}"))?;
                if open.name != name {
                    return Err(format!(
                        "event {idx}: E `{name}` closes innermost B `{}` (broken nesting)",
                        open.name
                    ));
                }
            }
            other => return Err(format!("event {idx}: unknown phase `{other}`")),
        }
    }

    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "span `{}` left open on tid {tid} at end of trace",
                open.path
            ));
        }
    }

    Ok(ChromeStats {
        events: events.len(),
        spans,
        threads: tids.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ph: Phase, name: &'static str, path: Option<&str>, tid: u32, ts_us: u64) -> TraceEvent {
        TraceEvent {
            ph,
            name,
            path: path.map(str::to_string),
            tid,
            ts_us,
        }
    }

    #[test]
    fn export_round_trips_through_validation() {
        let events = vec![
            ev(Phase::Begin, "epoch", Some("epoch"), 1, 0),
            ev(Phase::Begin, "batch", Some("epoch/batch"), 1, 5),
            ev(Phase::Begin, "shard", Some("shard"), 2, 6),
            ev(Phase::End, "shard", None, 2, 9),
            ev(Phase::End, "batch", None, 1, 10),
            ev(Phase::End, "epoch", None, 1, 12),
        ];
        let stats = validate_chrome_trace(&export(&events)).unwrap();
        assert_eq!(
            stats,
            ChromeStats {
                events: 6,
                spans: 3,
                threads: 2
            }
        );
    }

    #[test]
    fn exit_before_enter_is_rejected() {
        let events = vec![ev(Phase::End, "x", None, 1, 0)];
        let err = validate_chrome_trace(&export(&events)).unwrap_err();
        assert!(err.contains("before any B"), "{err}");
    }

    #[test]
    fn crossed_nesting_is_rejected() {
        let events = vec![
            ev(Phase::Begin, "a", Some("a"), 1, 0),
            ev(Phase::Begin, "b", Some("a/b"), 1, 1),
            ev(Phase::End, "a", None, 1, 2),
            ev(Phase::End, "b", None, 1, 3),
        ];
        let err = validate_chrome_trace(&export(&events)).unwrap_err();
        assert!(err.contains("broken nesting"), "{err}");
    }

    #[test]
    fn unparented_nested_path_is_rejected() {
        let events = vec![
            ev(Phase::Begin, "b", Some("a/b"), 1, 0),
            ev(Phase::End, "b", None, 1, 1),
        ];
        let err = validate_chrome_trace(&export(&events)).unwrap_err();
        assert!(err.contains("no open parent"), "{err}");
    }

    #[test]
    fn backwards_timestamps_are_rejected() {
        let events = vec![
            ev(Phase::Begin, "a", Some("a"), 1, 10),
            ev(Phase::End, "a", None, 1, 5),
        ];
        let err = validate_chrome_trace(&export(&events)).unwrap_err();
        assert!(err.contains("runs backwards"), "{err}");
    }

    #[test]
    fn dangling_open_span_is_rejected() {
        let events = vec![ev(Phase::Begin, "a", Some("a"), 1, 0)];
        let err = validate_chrome_trace(&export(&events)).unwrap_err();
        assert!(err.contains("left open"), "{err}");
    }

    #[test]
    fn garbage_json_is_rejected() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
    }
}
