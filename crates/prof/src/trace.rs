//! The span tracer: an [`eta_telemetry::SpanObserver`] that records
//! every span enter/exit with a monotonic timestamp and a stable
//! per-thread id, plus the [`TraceSession`] attach/export lifecycle.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use eta_telemetry::{SpanObserver, Telemetry};

/// Begin/End marker of one trace event (Chrome trace-event phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span opened.
    Begin,
    /// Span closed.
    End,
}

/// One recorded span boundary.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Begin or End.
    pub ph: Phase,
    /// Span name (the leaf of its path).
    pub name: &'static str,
    /// Full hierarchical path — `Begin` events only.
    pub path: Option<String>,
    /// Stable id of the recording thread.
    pub tid: u32,
    /// Microseconds since the tracer was created (monotonic clock).
    pub ts_us: u64,
}

// Stable small thread ids: assigned once per OS thread, in first-use
// order, shared by every tracer in the process. Trace *structure*
// never depends on these (see [`Tracer::structure`]); they only label
// Chrome trace rows.
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u32 {
    TID.with(|t| *t)
}

// Per-thread skip state for the event cap: `(tracer_id, depth)`. Once
// a tracer is full, each thread skips *whole subtrees* — a skipped
// Begin increments the depth and its matching End decrements it, so
// spans that opened before the cap still get their End recorded and
// every exported trace stays LIFO-balanced. The tracer id keeps state
// from one tracer leaking into the next on the same thread.
static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static SKIP: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Default event cap per tracer: bounds trace memory and file size on
/// long runs (the per-timestep cell scopes emit millions of boundaries
/// on a full harness run) while keeping more than enough structure for
/// Perfetto. At ~90 bytes per exported event this is ~25 MB of JSON.
pub const DEFAULT_MAX_EVENTS: usize = 1 << 18;

/// Records span boundaries from every thread into one event log.
///
/// Attach with
/// [`Telemetry::set_span_observer`](eta_telemetry::Telemetry::set_span_observer);
/// recording costs one `Instant` read and one mutex push per boundary,
/// and nothing is recorded while detached. Once the event cap is
/// reached, new span subtrees are dropped (counted, never silently)
/// rather than growing without bound.
pub struct Tracer {
    id: u64,
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    max_events: usize,
    dropped: AtomicU64,
}

impl Tracer {
    /// A fresh tracer with the [`DEFAULT_MAX_EVENTS`] cap; its clock
    /// starts now.
    pub fn new() -> Arc<Tracer> {
        Self::with_limit(DEFAULT_MAX_EVENTS)
    }

    /// A fresh tracer dropping new span subtrees past `max_events`
    /// recorded boundaries (Ends of already-open spans still record,
    /// so the cap may be exceeded by the open-span depth).
    pub fn with_limit(max_events: usize) -> Arc<Tracer> {
        Arc::new(Tracer {
            id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            max_events,
            dropped: AtomicU64::new(0),
        })
    }

    /// Spans dropped because the event cap was reached.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// This thread's skip depth under *this* tracer.
    fn skip_depth(&self) -> u64 {
        let (id, depth) = SKIP.get();
        if id == self.id {
            depth
        } else {
            0
        }
    }

    fn push(&self, ev: TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ev);
    }

    /// Snapshot of all recorded events (insertion order; per-thread
    /// subsequences are time-ordered).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Number of complete spans recorded (Begin events).
    pub fn span_count(&self) -> u64 {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|e| e.ph == Phase::Begin)
            .count() as u64
    }

    /// Number of distinct threads that recorded at least one event.
    pub fn thread_count(&self) -> u64 {
        let events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        events.iter().map(|e| e.tid).collect::<BTreeSet<_>>().len() as u64
    }

    /// The trace's *structure*: a multiset of span paths with counts.
    /// Timestamps and thread ids are deliberately excluded — for a
    /// deterministic workload this map is identical across runs and
    /// thread counts (shard spans are rooted per shard, not per
    /// thread), which is what the determinism tests compare.
    pub fn structure(&self) -> BTreeMap<String, u64> {
        let events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        let mut map = BTreeMap::new();
        for ev in events.iter() {
            if let Some(path) = &ev.path {
                *map.entry(path.clone()).or_insert(0u64) += 1;
            }
        }
        map
    }
}

impl SpanObserver for Tracer {
    fn enter_span(&self, name: &'static str, path: &str) {
        let depth = self.skip_depth();
        if depth > 0 {
            SKIP.set((self.id, depth + 1));
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() >= self.max_events {
            drop(events);
            SKIP.set((self.id, 1));
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(TraceEvent {
            ph: Phase::Begin,
            name,
            path: Some(path.to_string()),
            tid: current_tid(),
            ts_us,
        });
    }

    fn exit_span(&self, name: &'static str, _seconds: f64) {
        let depth = self.skip_depth();
        if depth > 0 {
            SKIP.set((self.id, depth - 1));
            return;
        }
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        self.push(TraceEvent {
            ph: Phase::End,
            name,
            path: None,
            tid: current_tid(),
            ts_us,
        });
    }
}

/// Attach-trace-export lifecycle around a [`Tracer`].
///
/// Created with an output directory and a binary name; on
/// [`finish`](TraceSession::finish) (or drop) it detaches the
/// observer, writes `<dir>/<binary>.trace.json` (Chrome trace-event
/// JSON) and `<dir>/<binary>.folded.txt` (collapsed stacks), and
/// emits `trace_spans_total` / `trace_threads` telemetry.
pub struct TraceSession {
    tracer: Arc<Tracer>,
    telemetry: Telemetry,
    dir: PathBuf,
    binary: String,
    finished: bool,
}

impl TraceSession {
    /// Attaches a fresh tracer to `telemetry` and returns the session.
    /// Trace files land in `dir` (created if missing) under
    /// `<binary>.trace.json` / `<binary>.folded.txt`.
    pub fn start(telemetry: Telemetry, dir: &Path, binary: &str) -> TraceSession {
        let tracer = Tracer::new();
        telemetry.set_span_observer(tracer.clone());
        TraceSession {
            tracer,
            telemetry,
            dir: dir.to_path_buf(),
            binary: binary.to_string(),
            finished: false,
        }
    }

    /// The underlying tracer (for structure/event assertions).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Detaches the tracer, writes both trace artifacts and emits the
    /// trace telemetry keys. Returns the Chrome trace path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from writing the artifacts.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        self.finish_inner()
    }

    fn finish_inner(&mut self) -> std::io::Result<PathBuf> {
        self.finished = true;
        self.telemetry.clear_span_observer();
        let events = self.tracer.events();
        std::fs::create_dir_all(&self.dir)?;
        let trace_path = self.dir.join(format!("{}.trace.json", self.binary));
        std::fs::write(&trace_path, crate::chrome::export(&events))?;
        let folded_path = self.dir.join(format!("{}.folded.txt", self.binary));
        std::fs::write(&folded_path, crate::flame::folded(&events))?;
        self.telemetry.incr(
            eta_telemetry::keys::TRACE_SPANS_TOTAL,
            self.tracer.span_count(),
        );
        self.telemetry.incr(
            eta_telemetry::keys::TRACE_SPANS_DROPPED_TOTAL,
            self.tracer.dropped_spans(),
        );
        self.telemetry.gauge(
            eta_telemetry::keys::TRACE_THREADS,
            self.tracer.thread_count() as f64,
        );
        Ok(trace_path)
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if !self.finished {
            // Best-effort export on unwinding/forgotten sessions.
            let _ = self.finish_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_telemetry::RunManifest;

    fn telemetry() -> Telemetry {
        Telemetry::new(RunManifest::capture("prof_trace_test", "0".into(), 1))
    }

    #[test]
    fn tracer_records_nested_spans_with_paths() {
        let t = telemetry();
        let tracer = Tracer::new();
        t.set_span_observer(tracer.clone());
        {
            let _a = t.span("outer");
            let _b = t.span("inner");
        }
        t.clear_span_observer();
        let events = tracer.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].path.as_deref(), Some("outer"));
        assert_eq!(events[1].path.as_deref(), Some("outer/inner"));
        assert_eq!(events[2].ph, Phase::End);
        assert_eq!(events[2].name, "inner");
        assert_eq!(events[3].name, "outer");
        assert_eq!(tracer.span_count(), 2);
        assert_eq!(tracer.thread_count(), 1);
        let s = tracer.structure();
        assert_eq!(s.get("outer"), Some(&1));
        assert_eq!(s.get("outer/inner"), Some(&1));
    }

    #[test]
    fn timestamps_are_monotonic_per_thread() {
        let t = telemetry();
        let tracer = Tracer::new();
        t.set_span_observer(tracer.clone());
        for _ in 0..10 {
            let _s = t.span("tick");
        }
        t.clear_span_observer();
        let events = tracer.events();
        for w in events.windows(2) {
            assert!(w[0].ts_us <= w[1].ts_us);
        }
    }

    #[test]
    fn event_cap_drops_whole_subtrees_but_stays_balanced() {
        let t = telemetry();
        let tracer = Tracer::with_limit(3);
        t.set_span_observer(tracer.clone());
        {
            // Opens before the cap trips: B(outer), B(first), E(first)
            // fill the 3-event budget; `late` and its child are then
            // skipped as one subtree, but outer's End still records.
            let _outer = t.span("outer");
            {
                let _first = t.span("first");
            }
            {
                let _late = t.span("late");
                let _child = t.span("child");
            }
        }
        t.clear_span_observer();
        assert_eq!(tracer.dropped_spans(), 2);
        let events = tracer.events();
        let begins = events.iter().filter(|e| e.ph == Phase::Begin).count();
        let ends = events.iter().filter(|e| e.ph == Phase::End).count();
        assert_eq!(begins, ends, "capped trace must stay B/E balanced");
        crate::chrome::validate_chrome_trace(&crate::chrome::export(&events)).unwrap();
        assert!(tracer.structure().contains_key("outer"));
        assert!(!tracer.structure().contains_key("outer/late"));
    }

    #[test]
    fn session_writes_both_artifacts_and_emits_keys() {
        let t = telemetry();
        let dir = std::env::temp_dir().join("eta_prof_session_test");
        let session = TraceSession::start(t.clone(), &dir, "unit");
        {
            let _s = t.span("work");
        }
        let trace_path = session.finish().unwrap();
        let text = std::fs::read_to_string(&trace_path).unwrap();
        crate::chrome::validate_chrome_trace(&text).unwrap();
        let folded = std::fs::read_to_string(dir.join("unit.folded.txt")).unwrap();
        assert!(folded.contains("work"));
        let snap = t.snapshot();
        assert_eq!(
            snap.counter_total(eta_telemetry::keys::TRACE_SPANS_TOTAL),
            1
        );
        assert_eq!(
            snap.counter_total(eta_telemetry::keys::TRACE_SPANS_DROPPED_TOTAL),
            0
        );
        assert_eq!(snap.gauge(eta_telemetry::keys::TRACE_THREADS), Some(1.0));
        // The observer is detached: new spans are no longer recorded.
        {
            let _s = t.span("after");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
