//! Perf-trajectory tracking: append-only bench history and the
//! regression gate.
//!
//! Every bench run appends one [`BenchRecord`] per tracked metric to
//! `results/bench_history.jsonl` (one JSON object per line — easy to
//! diff, append-merge, and read without schema migrations). The gate
//! ([`compare`]) takes the *last committed* record per `(bench,
//! label)` key as the baseline and fails when a current median is
//! slower than `baseline × (1 + threshold)`; metrics with no baseline
//! pass (a new shape cannot regress). The `eta-bench-track` binary
//! fronts both operations for CI.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// One tracked bench measurement at one commit.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BenchRecord {
    /// Git revision the run was taken at (`unknown` outside a repo).
    pub git_sha: String,
    /// Bench harness name (e.g. `gemm_packed`).
    pub bench: String,
    /// Metric label within the bench (e.g. `nt m128 k2048 n8192`).
    pub label: String,
    /// Median wall seconds (the gated quantity — lower is better).
    pub median_seconds: f64,
    /// Achieved GFLOP/s at the median.
    pub gflops: f64,
    /// Speedup vs the bench's own reference (1.0 when not applicable).
    pub speedup: f64,
}

impl BenchRecord {
    fn key(&self) -> (String, String) {
        (self.bench.clone(), self.label.clone())
    }
}

/// Appends records to a JSONL history file (created if missing).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append(path: &Path, records: &[BenchRecord]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for r in records {
        let line = serde_json::to_string(r)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(file, "{line}")?;
    }
    Ok(())
}

/// Reads a JSONL history file; a missing file is an empty history.
///
/// # Errors
///
/// Propagates filesystem errors and malformed-line parse errors (a
/// corrupt history should fail loudly, not silently drop baselines).
pub fn read(path: &Path) -> std::io::Result<Vec<BenchRecord>> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(path)?;
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: BenchRecord = serde_json::from_str(line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}:{}: {e}", path.display(), lineno + 1),
            )
        })?;
        records.push(record);
    }
    Ok(records)
}

/// Extracts tracked records from the per-shape `BENCH_gemm.json`
/// schema (top-level `bench` name + `shapes` array, each shape with
/// `label`, `packed_seconds`, `gflops`, `speedup`), stamping them with
/// `git_sha`.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn records_from_bench_json(text: &str, git_sha: &str) -> Result<Vec<BenchRecord>, String> {
    let root: serde::Value =
        serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let bench = root
        .get("bench")
        .and_then(serde::Value::as_str)
        .ok_or("missing top-level `bench` name")?;
    let shapes = match root.get("shapes") {
        Some(serde::Value::Seq(shapes)) => shapes,
        _ => return Err("missing `shapes` array".to_string()),
    };
    let mut records = Vec::with_capacity(shapes.len());
    for (i, shape) in shapes.iter().enumerate() {
        let str_field = |key: &str| -> Result<&str, String> {
            shape
                .get(key)
                .and_then(serde::Value::as_str)
                .ok_or_else(|| format!("shapes[{i}]: missing string `{key}`"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            shape
                .get(key)
                .and_then(serde::Value::as_f64)
                .ok_or_else(|| format!("shapes[{i}]: missing number `{key}`"))
        };
        records.push(BenchRecord {
            git_sha: git_sha.to_string(),
            bench: bench.to_string(),
            label: str_field("label")?.to_string(),
            median_seconds: num_field("packed_seconds")?,
            gflops: num_field("gflops")?,
            speedup: num_field("speedup")?,
        });
    }
    Ok(records)
}

/// Extracts `(label, roof fraction)` pairs from a `roofline.json`
/// report: one entry per measured cell kernel (`kernel nt` …) and one
/// per LN5–LN8 training-step shape (`shape LN5` …). The fraction is
/// the report's `efficiency` field (achieved / roof GFLOP/s), which is
/// what the roofline gate tracks — it is stable across machines in a
/// way raw GFLOP/s is not.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn roof_fractions_from_json(text: &str) -> Result<Vec<(String, f64)>, String> {
    let root: serde::Value =
        serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let mut fractions = Vec::new();
    let mut collect = |section: &str, name_key: &str| -> Result<(), String> {
        let entries = match root.get(section) {
            Some(serde::Value::Seq(entries)) => entries,
            _ => return Err(format!("missing `{section}` array")),
        };
        for (i, entry) in entries.iter().enumerate() {
            let name = entry
                .get(name_key)
                .and_then(serde::Value::as_str)
                .ok_or_else(|| format!("{section}[{i}]: missing string `{name_key}`"))?;
            let eff = entry
                .get("efficiency")
                .and_then(serde::Value::as_f64)
                .ok_or_else(|| format!("{section}[{i}]: missing number `efficiency`"))?;
            let prefix = if section == "kernels" {
                "kernel"
            } else {
                "shape"
            };
            fractions.push((format!("{prefix} {name}"), eff));
        }
        Ok(())
    };
    collect("kernels", "orientation")?;
    collect("shapes", "shape")?;
    Ok(fractions)
}

/// One roofline entry whose roof fraction fell below the baseline.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RoofRegression {
    /// Entry label (`kernel tn`, `shape LN5`, …).
    pub label: String,
    /// Committed baseline roof fraction.
    pub baseline: f64,
    /// Current roof fraction.
    pub current: f64,
}

/// Outcome of a roofline-gate run.
#[derive(Debug, Clone)]
pub struct RooflineGateReport {
    /// Entries whose fraction fell below `baseline × (1 − slack)`.
    pub regressions: Vec<RoofRegression>,
    /// Entries compared against a baseline.
    pub compared: usize,
    /// Current entries with no baseline (new shapes — pass).
    pub fresh: usize,
    /// The relative slack the gate ran with.
    pub slack: f64,
}

impl RooflineGateReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable gate output (one line per offender).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.passed() {
            out.push_str(&format!(
                "roofline gate PASSED: {} entr(ies) within {:.0}% of committed roof fraction ({} new)\n",
                self.compared,
                self.slack * 100.0,
                self.fresh
            ));
        } else {
            out.push_str(&format!(
                "roofline gate FAILED: {} of {} entr(ies) below committed roof fraction\n",
                self.regressions.len(),
                self.compared
            ));
            for r in &self.regressions {
                out.push_str(&format!(
                    "  {}: {:.3} -> {:.3} of roof (floor {:.3})\n",
                    r.label,
                    r.baseline,
                    r.current,
                    r.baseline * (1.0 - self.slack)
                ));
            }
        }
        out
    }
}

/// Gates current roof fractions against the committed baseline:
/// an entry fails when its fraction drops below
/// `baseline × (1 − slack)`. Entries absent from the baseline pass.
pub fn compare_roofline(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    slack: f64,
) -> RooflineGateReport {
    let base: BTreeMap<&str, f64> = baseline.iter().map(|(l, e)| (l.as_str(), *e)).collect();
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    let mut fresh = 0usize;
    for (label, eff) in current {
        match base.get(label.as_str()) {
            None => fresh += 1,
            Some(b) => {
                compared += 1;
                if *eff < b * (1.0 - slack) {
                    regressions.push(RoofRegression {
                        label: label.clone(),
                        baseline: *b,
                        current: *eff,
                    });
                }
            }
        }
    }
    RooflineGateReport {
        regressions,
        compared,
        fresh,
        slack,
    }
}

/// The most recent record per `(bench, label)` key — the baseline set.
pub fn baselines(history: &[BenchRecord]) -> BTreeMap<(String, String), BenchRecord> {
    let mut map = BTreeMap::new();
    for r in history {
        map.insert(r.key(), r.clone());
    }
    map
}

/// One metric that regressed beyond the threshold.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Regression {
    /// Bench harness name.
    pub bench: String,
    /// Metric label.
    pub label: String,
    /// Baseline median seconds (and the sha it came from).
    pub baseline_seconds: f64,
    /// Baseline git revision.
    pub baseline_sha: String,
    /// Current median seconds.
    pub current_seconds: f64,
    /// `current / baseline - 1`.
    pub slowdown: f64,
}

/// Outcome of a gate run.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Metrics slower than `baseline × (1 + threshold)`.
    pub regressions: Vec<Regression>,
    /// Metrics compared against a baseline.
    pub compared: usize,
    /// Current metrics with no baseline (new shapes — pass).
    pub fresh: usize,
    /// The threshold the gate ran with.
    pub threshold: f64,
}

impl CompareReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable gate output (one line per offender).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.passed() {
            out.push_str(&format!(
                "perf gate PASSED: {} metric(s) within {:.0}% of baseline ({} new)\n",
                self.compared,
                self.threshold * 100.0,
                self.fresh
            ));
        } else {
            out.push_str(&format!(
                "perf gate FAILED: {} of {} metric(s) regressed beyond {:.0}%\n",
                self.regressions.len(),
                self.compared,
                self.threshold * 100.0
            ));
            for r in &self.regressions {
                out.push_str(&format!(
                    "  {} / {}: {:.6}s -> {:.6}s (+{:.1}%, baseline @ {})\n",
                    r.bench,
                    r.label,
                    r.baseline_seconds,
                    r.current_seconds,
                    r.slowdown * 100.0,
                    r.baseline_sha
                ));
            }
        }
        out
    }
}

/// Gates `current` against the last committed baseline per metric.
pub fn compare(history: &[BenchRecord], current: &[BenchRecord], threshold: f64) -> CompareReport {
    let base = baselines(history);
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    let mut fresh = 0usize;
    for cur in current {
        match base.get(&cur.key()) {
            None => fresh += 1,
            Some(b) => {
                compared += 1;
                if cur.median_seconds > b.median_seconds * (1.0 + threshold) {
                    regressions.push(Regression {
                        bench: cur.bench.clone(),
                        label: cur.label.clone(),
                        baseline_seconds: b.median_seconds,
                        baseline_sha: b.git_sha.clone(),
                        current_seconds: cur.median_seconds,
                        slowdown: cur.median_seconds / b.median_seconds - 1.0,
                    });
                }
            }
        }
    }
    CompareReport {
        regressions,
        compared,
        fresh,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, sha: &str, median: f64) -> BenchRecord {
        BenchRecord {
            git_sha: sha.to_string(),
            bench: "gemm_packed".to_string(),
            label: label.to_string(),
            median_seconds: median,
            gflops: 10.0,
            speedup: 2.0,
        }
    }

    #[test]
    fn identical_run_passes_the_gate() {
        let history = vec![record("nt", "aaa", 0.100)];
        let current = vec![record("nt", "bbb", 0.100)];
        let report = compare(&history, &current, 0.10);
        assert!(report.passed());
        assert_eq!(report.compared, 1);
    }

    #[test]
    fn injected_twenty_percent_regression_fails_a_ten_percent_gate() {
        let history = vec![record("nt", "aaa", 0.100), record("nn", "aaa", 0.200)];
        // Synthetic regression: the nt median inflated by 20%.
        let current = vec![record("nt", "bbb", 0.120), record("nn", "bbb", 0.200)];
        let report = compare(&history, &current, 0.10);
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        let r = &report.regressions[0];
        assert_eq!(r.label, "nt");
        assert!((r.slowdown - 0.20).abs() < 1e-9);
        let text = report.render();
        assert!(text.contains("FAILED") && text.contains("nt"), "{text}");
    }

    #[test]
    fn last_record_per_key_is_the_baseline() {
        let history = vec![
            record("nt", "old", 0.050),
            record("nt", "new", 0.200), // later commit re-baselined slower
        ];
        let current = vec![record("nt", "cur", 0.210)];
        assert!(compare(&history, &current, 0.10).passed());
    }

    #[test]
    fn fresh_metrics_pass_without_baseline() {
        let report = compare(&[], &[record("nt", "x", 1.0)], 0.10);
        assert!(report.passed());
        assert_eq!(report.fresh, 1);
        assert_eq!(report.compared, 0);
    }

    #[test]
    fn history_round_trips_through_jsonl() {
        let dir = std::env::temp_dir().join("eta_prof_track_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.jsonl");
        std::fs::remove_file(&path).ok();
        append(&path, &[record("nt", "aaa", 0.1)]).unwrap();
        append(&path, &[record("nt", "bbb", 0.2)]).unwrap();
        let history = read(&path).unwrap();
        assert_eq!(history.len(), 2);
        let base = baselines(&history);
        let key = ("gemm_packed".to_string(), "nt".to_string());
        assert_eq!(base.get(&key).unwrap().git_sha, "bbb");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_history_fails_loudly() {
        let dir = std::env::temp_dir().join("eta_prof_track_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        assert!(read(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_history_reads_empty() {
        let path = std::env::temp_dir().join("eta_prof_track_missing/none.jsonl");
        assert!(read(&path).unwrap().is_empty());
    }

    const ROOFLINE_JSON: &str = r#"{
        "machine": {"peak_gflops": 80.0, "mem_bw_gbps": 11.0},
        "kernels": [
            {"orientation": "tn", "m": 8192, "k": 128, "n": 2048,
             "flops": 1, "bytes": 1, "intensity": 59.0,
             "achieved_gflops": 45.0, "roof_gflops": 80.0,
             "efficiency": 0.57, "speedup": 7.4}
        ],
        "shapes": [
            {"shape": "LN5", "layers": 5, "hidden": 2048, "seq_len": 256,
             "batch": 128, "flops": 1, "traffic_bytes": 1,
             "intensity": 1218.0, "achieved_gflops": 53.5,
             "roof_gflops": 80.0, "efficiency": 0.67}
        ]
    }"#;

    #[test]
    fn roofline_json_yields_prefixed_fractions() {
        let fractions = roof_fractions_from_json(ROOFLINE_JSON).unwrap();
        assert_eq!(fractions.len(), 2);
        assert_eq!(fractions[0], ("kernel tn".to_string(), 0.57));
        assert_eq!(fractions[1], ("shape LN5".to_string(), 0.67));
        assert!(roof_fractions_from_json("{}").is_err());
    }

    #[test]
    fn roofline_gate_passes_within_slack_and_fails_below() {
        let baseline = vec![("shape LN5".to_string(), 0.67)];
        // 5% below baseline is inside a 10% slack…
        let ok = compare_roofline(&baseline, &[("shape LN5".to_string(), 0.64)], 0.10);
        assert!(ok.passed());
        assert_eq!(ok.compared, 1);
        // …but 20% below is not.
        let bad = compare_roofline(&baseline, &[("shape LN5".to_string(), 0.53)], 0.10);
        assert!(!bad.passed());
        assert_eq!(bad.regressions[0].label, "shape LN5");
        assert!(bad.render().contains("FAILED"), "{}", bad.render());
    }

    #[test]
    fn roofline_gate_passes_fresh_entries() {
        let report = compare_roofline(&[], &[("shape LN9".to_string(), 0.1)], 0.10);
        assert!(report.passed());
        assert_eq!(report.fresh, 1);
    }

    #[test]
    fn bench_json_converts_to_records() {
        let text = r#"{
            "bench": "gemm_packed",
            "machine": {"peak_gflops": 40.0, "mem_bw_gbps": 12.0},
            "shapes": [
                {"label": "nt m128 k2048 n8192", "orientation": "nt",
                 "m": 128, "k": 2048, "n": 8192,
                 "naive_seconds": 0.4, "packed_seconds": 0.1,
                 "gflops": 42.9, "speedup": 4.0}
            ]
        }"#;
        let records = records_from_bench_json(text, "abc123").unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].bench, "gemm_packed");
        assert_eq!(records[0].label, "nt m128 k2048 n8192");
        assert_eq!(records[0].git_sha, "abc123");
        assert_eq!(records[0].median_seconds, 0.1);
        assert!(records_from_bench_json("{}", "x").is_err());
    }
}
