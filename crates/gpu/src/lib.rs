//! # eta-gpu
//!
//! Analytic performance/energy model of the two GPUs the η-LSTM paper
//! characterizes (Sec. III, Fig. 3): the 32 GB NVIDIA Tesla V100 (Volta)
//! and the 16 GB Quadro RTX 5000 (Turing).
//!
//! The paper's baseline numbers come from PyTorch runs profiled with
//! nvprof; neither the hardware nor the profiler is available here, so
//! this crate substitutes a calibrated roofline model (see DESIGN.md §1):
//! compute time from peak FLOPS scaled by a parallelism-efficiency curve,
//! memory time from the `eta-memsim` traffic model through a
//! footprint-sensitive effective bandwidth, a per-cell kernel-launch
//! term, and an energy model with static, per-FLOP, and per-byte
//! components. The model reproduces the paper's observed *shapes*:
//!
//! - throughput rises with hidden size then saturates (ALU saturation,
//!   Fig. 3a), while energy efficiency peaks and then declines
//!   (growing memory activity);
//! - throughput is nearly flat in layer count but energy efficiency
//!   falls (Fig. 3b), and the 7–8-layer configs exceed the RTX 5000's
//!   16 GB capacity;
//! - throughput and energy efficiency both fall with layer length
//!   (Fig. 3c) as the intermediate-variable working set grows.
//!
//! # Example
//!
//! ```
//! use eta_gpu::{GpuModel, GpuSpec};
//! use eta_memsim::model::{LstmShape, OptEffects};
//!
//! let v100 = GpuModel::new(GpuSpec::v100());
//! let shape = LstmShape::new(1024, 1024, 3, 35, 128);
//! let est = v100.estimate(&shape, &OptEffects::baseline());
//! assert!(est.fits);
//! assert!(est.tflops > 1.0 && est.tflops < 16.0);
//! ```

mod device;
mod perf;

pub use device::{EnergyParams, GpuSpec};
pub use perf::{GpuEstimate, GpuModel};
