//! GPU device specifications and energy-model parameters.

use serde::{Deserialize, Serialize};

/// Specification of a GPU, sourced from the vendor datasheets the paper
/// cites (Volta and Turing whitepapers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Peak FP32 throughput, TFLOPS.
    pub peak_tflops: f64,
    /// DRAM bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// DRAM capacity, bytes.
    pub mem_capacity: u64,
    /// Board power, watts.
    pub tdp_watts: f64,
}

impl GpuSpec {
    /// NVIDIA Tesla V100 32 GB (Volta): 15.7 FP32 TFLOPS, 900 GB/s HBM2,
    /// 300 W.
    pub fn v100() -> Self {
        GpuSpec {
            name: "Tesla V100 32GB".to_string(),
            peak_tflops: 15.7,
            mem_bw_gbs: 900.0,
            mem_capacity: 32 * (1 << 30),
            tdp_watts: 300.0,
        }
    }

    /// NVIDIA Quadro RTX 5000 16 GB (Turing): 11.2 FP32 TFLOPS,
    /// 448 GB/s GDDR6, 265 W.
    pub fn rtx5000() -> Self {
        GpuSpec {
            name: "Quadro RTX 5000 16GB".to_string(),
            peak_tflops: 11.2,
            mem_bw_gbs: 448.0,
            mem_capacity: 16 * (1 << 30),
            tdp_watts: 265.0,
        }
    }
}

/// Energy-model parameters.
///
/// Calibrated so that a fully compute-bound V100 run lands near its TDP
/// and the resulting GFLOPS/W curve peaks in the 40–50 range the paper's
/// Fig. 3 shows: `E = P_static·t + e_flop·FLOPs + e_byte·DRAM bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Idle/static power, watts.
    pub static_watts: f64,
    /// Energy per floating-point operation, joules (≈9 pJ for FP32 on
    /// 12 nm-class silicon).
    pub joules_per_flop: f64,
    /// Effective energy per DRAM byte moved, joules. This is the
    /// end-to-end cost of getting a byte to the ALUs: device access
    /// (HBM2 ≈7 pJ/bit), PHY/controller, and the on-chip NoC/L2 hop —
    /// roughly 4× the raw device energy (≈250 pJ/byte for HBM2-class
    /// memory).
    pub joules_per_byte: f64,
}

impl EnergyParams {
    /// Defaults for an HBM2-equipped datacenter GPU (V100-class).
    pub fn hbm2() -> Self {
        EnergyParams {
            static_watts: 70.0,
            joules_per_flop: 9.0e-12,
            joules_per_byte: 250.0e-12,
        }
    }

    /// Defaults for a GDDR6 workstation GPU (RTX 5000-class).
    pub fn gddr6() -> Self {
        EnergyParams {
            static_watts: 55.0,
            joules_per_flop: 10.0e-12,
            joules_per_byte: 350.0e-12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_datasheets() {
        let v = GpuSpec::v100();
        assert_eq!(v.peak_tflops, 15.7);
        assert_eq!(v.mem_capacity, 32 * (1 << 30));
        let r = GpuSpec::rtx5000();
        assert!(r.peak_tflops < v.peak_tflops);
        assert!(r.mem_bw_gbs < v.mem_bw_gbs);
    }

    #[test]
    fn compute_bound_v100_power_is_near_tdp() {
        let e = EnergyParams::hbm2();
        // At 15.7 TFLOPS sustained: static + flops·e_flop per second.
        let watts = e.static_watts + 15.7e12 * e.joules_per_flop;
        assert!(
            (150.0..350.0).contains(&watts),
            "full-tilt power {watts} W implausible for a 300 W part"
        );
    }
}
