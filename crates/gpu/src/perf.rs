//! The roofline-plus-overheads GPU performance and energy model.
//!
//! Time per training iteration decomposes into:
//!
//! - **GEMM time** — executed GEMM FLOPs over peak FLOPS scaled by a
//!   parallelism-efficiency curve that saturates with hidden size
//!   (ALU saturation, paper Fig. 3a);
//! - **memory time** — total DRAM bytes (the named tensors from
//!   `eta-memsim` plus GEMM streaming traffic) over effective bandwidth,
//!   half-overlapped with compute (unfused kernels serialize part of
//!   it);
//! - **per-cell stall** — kernel-launch and memory-system overhead per
//!   executed cell, growing with the live footprint (allocator, paging
//!   and row-locality pressure) — the term behind the layer-length
//!   throughput decline of Fig. 3c.
//!
//! Energy adds static power, per-FLOP energy, and per-byte energy whose
//! effective cost grows with the live footprint (row-activation
//! locality), which reproduces the energy-efficiency declines of
//! Figs. 3a–c.
//!
//! # How the software optimizations map onto a GPU
//!
//! MS2 removes whole BP cells — coarse-grained work a GPU exploits
//! directly, so it scales both compute and traffic. MS1's fine-grained
//! value sparsity is *not* convertible into GPU FLOP savings (no
//! hardware support for irregular skipping — the gap the η-LSTM
//! accelerator closes), so on the GPU MS1 only reduces memory traffic.
//! This asymmetry is why the paper's GPU-only speedups are 1.21× (MS1)
//! vs 1.32× (MS2) while the accelerator profits much more.

use crate::device::{EnergyParams, GpuSpec};
use eta_memsim::model::{self, LstmShape, OptEffects};
use serde::{Deserialize, Serialize};

/// Peak fraction of FLOPS reachable by LSTM GEMMs at large hidden size.
pub const MAX_PARALLEL_EFF: f64 = 0.70;

/// Hidden size at which the parallelism-efficiency curve reaches half of
/// [`MAX_PARALLEL_EFF`] (squared-saturating form), matching the paper's
/// observation that throughput saturates beyond hidden ≈1024.
pub const HALF_SATURATION_HIDDEN: f64 = 384.0;

/// Per-executed-cell overhead, seconds (kernel launches + sync of the
/// unfused cell kernels).
pub const CELL_STALL_S: f64 = 1.2e-4;

/// Footprint at which the per-cell stall doubles (bytes).
pub const STALL_FOOTPRINT_REF: f64 = 1.0 * 1024.0 * 1024.0 * 1024.0;

/// Fraction of peak DRAM bandwidth achieved by the mixed
/// streaming/scattered training traffic.
pub const BANDWIDTH_EFF: f64 = 0.6;

/// Fraction of memory time hidden under compute (partial overlap of the
/// unfused kernel pipeline).
pub const MEM_EXPOSED_FRACTION: f64 = 0.8;

/// Footprint at which per-byte DRAM energy doubles (bytes) — the
/// row-locality pressure term.
pub const ENERGY_FOOTPRINT_REF: f64 = 1.5 * 1024.0 * 1024.0 * 1024.0;

/// Device-memory demand multiplier over the named-tensor footprint:
/// the PyTorch caching allocator, cuDNN GEMM workspaces, double-buffered
/// gradient storage, and fragmentation. Calibrated so that — as the
/// paper reports for Fig. 3b — the 7-layer H2048 model no longer fits a
/// 16 GB RTX 5000 while the 6-layer one still does.
pub const RUNTIME_DEMAND_FACTOR: f64 = 7.0;

/// Model outputs for one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuEstimate {
    /// Iteration latency, seconds.
    pub time_s: f64,
    /// GEMM compute time, seconds.
    pub t_gemm_s: f64,
    /// Exposed memory time, seconds.
    pub t_mem_s: f64,
    /// Per-cell stall time, seconds.
    pub t_stall_s: f64,
    /// Achieved throughput over executed FLOPs, TFLOPS.
    pub tflops: f64,
    /// Iteration energy, joules.
    pub energy_j: f64,
    /// Energy efficiency, GFLOPS/W (= executed GFLOPs per joule).
    pub gflops_per_watt: f64,
    /// Peak memory footprint, bytes.
    pub footprint_bytes: u64,
    /// Total DRAM traffic (named tensors + GEMM streaming), bytes.
    pub traffic_bytes: u64,
    /// Whether the footprint fits in device memory — the paper's
    /// 7/8-layer models do not fit the 16 GB RTX 5000 (Fig. 3b).
    pub fits: bool,
}

/// An analytic GPU executing LSTM training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    spec: GpuSpec,
    energy: EnergyParams,
}

impl GpuModel {
    /// Builds a model with memory-technology-appropriate energy defaults
    /// (HBM2 parameters for >700 GB/s parts, GDDR6 otherwise).
    pub fn new(spec: GpuSpec) -> Self {
        let energy = if spec.mem_bw_gbs > 700.0 {
            EnergyParams::hbm2()
        } else {
            EnergyParams::gddr6()
        };
        GpuModel { spec, energy }
    }

    /// Overrides the energy parameters.
    pub fn with_energy(mut self, energy: EnergyParams) -> Self {
        self.energy = energy;
        self
    }

    /// The device specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Parallelism efficiency at hidden size `h`:
    /// `MAX · h²/(h² + h½²)`.
    pub fn parallel_efficiency(h: usize) -> f64 {
        let h2 = (h as f64) * (h as f64);
        let half2 = HALF_SATURATION_HIDDEN * HALF_SATURATION_HIDDEN;
        MAX_PARALLEL_EFF * h2 / (h2 + half2)
    }

    /// GEMM streaming DRAM traffic per iteration: every executed cell
    /// streams its layer's weights once per pass (FW one pass, BP two),
    /// plus its activation-sized inputs/outputs. MS1 lets the BP passes
    /// skip pruned-operand columns (density factor); MS2 removes the BP
    /// passes of skipped cells.
    pub fn gemm_stream_bytes(shape: &LstmShape, eff: &OptEffects) -> u64 {
        let kept = eff.kept_fraction();
        let rho = if eff.ms1 { eff.p1_density } else { 1.0 };
        let io_per_cell = (shape.batch * shape.hidden * 8 * model::BYTES_F32 as usize) as f64;
        let mut total = 0.0f64;
        for l in 0..shape.layers {
            let wu = shape.layer_weight_bytes(l) as f64;
            let passes = 1.0 + 2.0 * kept * rho;
            total += shape.seq_len as f64 * (wu * passes + io_per_cell * (1.0 + 2.0 * kept));
        }
        total as u64
    }

    /// Estimates one training iteration of `shape` under the software
    /// optimizations in `eff`.
    pub fn estimate(&self, shape: &LstmShape, eff: &OptEffects) -> GpuEstimate {
        let sigma = 1.0 - eff.kept_fraction();
        // Executed GEMM FLOPs: FW always, BP scaled by MS2 skipping only
        // (MS1 sparsity is not GPU-exploitable as FLOP savings).
        let flops_exec = shape.training_flops() as f64 * (1.0 / 3.0 + 2.0 / 3.0 * (1.0 - sigma));

        let footprint = model::footprint(shape, eff).total();
        let named_traffic = model::traffic(shape, eff).total();
        let traffic = named_traffic + Self::gemm_stream_bytes(shape, eff);

        let par_eff = Self::parallel_efficiency(shape.hidden);
        let t_gemm = flops_exec / (self.spec.peak_tflops * 1e12 * par_eff);

        let t_mem =
            traffic as f64 / (self.spec.mem_bw_gbs * 1e9 * BANDWIDTH_EFF) * MEM_EXPOSED_FRACTION;

        let cells_exec = shape.cells() as f64 * (2.0 - sigma) / 2.0 * 2.0;
        let fp_pressure = 1.0 + footprint as f64 / STALL_FOOTPRINT_REF;
        let t_stall = cells_exec / 2.0 * CELL_STALL_S * fp_pressure;

        let time_s = t_gemm + t_mem + t_stall;

        let e_byte_eff =
            self.energy.joules_per_byte * (1.0 + footprint as f64 / ENERGY_FOOTPRINT_REF);
        let energy_j = self.energy.static_watts * time_s
            + self.energy.joules_per_flop * flops_exec
            + e_byte_eff * traffic as f64;

        GpuEstimate {
            time_s,
            t_gemm_s: t_gemm,
            t_mem_s: t_mem,
            t_stall_s: t_stall,
            tflops: flops_exec / time_s / 1e12,
            energy_j,
            gflops_per_watt: flops_exec / 1e9 / energy_j,
            footprint_bytes: footprint,
            traffic_bytes: traffic,
            fits: (footprint as f64 * RUNTIME_DEMAND_FACTOR) <= self.spec.mem_capacity as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> GpuModel {
        GpuModel::new(GpuSpec::v100())
    }

    fn shape(h: usize, ln: usize, ll: usize) -> LstmShape {
        LstmShape::new(h, h, ln, ll, 128)
    }

    #[test]
    fn throughput_saturates_with_hidden_size() {
        let m = v100();
        let base = OptEffects::baseline();
        let tf: Vec<f64> = [256, 512, 1024, 2048, 3072]
            .iter()
            .map(|&h| m.estimate(&shape(h, 3, 35), &base).tflops)
            .collect();
        // Rising at the start...
        assert!(tf[1] > tf[0] * 1.3, "throughput should climb: {tf:?}");
        assert!(tf[2] > tf[1]);
        // ...then flattening: the last doubling gains little.
        let late_gain = tf[4] / tf[2];
        assert!(
            late_gain < 1.5,
            "throughput should saturate beyond H1024: {tf:?}"
        );
        // Plateau in the paper's observed ballpark (Fig. 3a, ≈6–11 TFLOPS).
        assert!((3.0..13.0).contains(&tf[4]), "plateau {tf:?}");
    }

    #[test]
    fn energy_efficiency_peaks_then_declines_with_hidden_size() {
        let m = v100();
        let base = OptEffects::baseline();
        let eff: Vec<f64> = [256, 1024, 3072]
            .iter()
            .map(|&h| m.estimate(&shape(h, 3, 35), &base).gflops_per_watt)
            .collect();
        assert!(
            eff[1] > eff[0],
            "efficiency climbs to the sweet spot: {eff:?}"
        );
        assert!(
            eff[2] < eff[1],
            "efficiency declines past saturation: {eff:?}"
        );
        assert!(
            (10.0..60.0).contains(&eff[1]),
            "peak {eff:?} out of Fig. 3 band"
        );
    }

    #[test]
    fn throughput_flat_but_efficiency_falls_with_layers() {
        let m = v100();
        let base = OptEffects::baseline();
        let e2 = m.estimate(&shape(2048, 2, 35), &base);
        let e8 = m.estimate(&shape(2048, 8, 35), &base);
        let thpt_ratio = e8.tflops / e2.tflops;
        assert!(
            (0.75..1.25).contains(&thpt_ratio),
            "throughput should be near-flat in layer count: {thpt_ratio}"
        );
        assert!(
            e8.gflops_per_watt < e2.gflops_per_watt,
            "efficiency should fall with layers"
        );
    }

    #[test]
    fn seven_layer_model_overflows_rtx5000() {
        let rtx = GpuModel::new(GpuSpec::rtx5000());
        let base = OptEffects::baseline();
        assert!(rtx.estimate(&shape(2048, 6, 35), &base).fits);
        assert!(!rtx.estimate(&shape(2048, 7, 35), &base).fits);
        // The V100's 32 GB still fits it.
        assert!(v100().estimate(&shape(2048, 7, 35), &base).fits);
    }

    #[test]
    fn throughput_and_efficiency_fall_with_layer_length() {
        let m = v100();
        let base = OptEffects::baseline();
        let short = m.estimate(&shape(1024, 3, 18), &base);
        let long = m.estimate(&shape(1024, 3, 303), &base);
        assert!(
            long.tflops < short.tflops,
            "throughput should fall with layer length: {} vs {}",
            long.tflops,
            short.tflops
        );
        assert!(long.gflops_per_watt < short.gflops_per_watt);
    }

    #[test]
    fn ms2_speeds_up_more_than_ms1_on_gpu() {
        let m = v100();
        // WMT-like long config where both optimizations bite.
        let s = shape(1024, 4, 151);
        let t_base = m.estimate(&s, &OptEffects::baseline()).time_s;
        let t_ms1 = m.estimate(&s, &OptEffects::ms1(0.35)).time_s;
        let t_ms2 = m.estimate(&s, &OptEffects::ms2(0.49)).time_s;
        let t_comb = m.estimate(&s, &OptEffects::combined(0.35, 0.49)).time_s;
        let (s1, s2, sc) = (t_base / t_ms1, t_base / t_ms2, t_base / t_comb);
        assert!(s1 > 1.0, "MS1 GPU speedup {s1}");
        assert!(s2 > s1, "MS2 ({s2}) should beat MS1 ({s1}) on a GPU");
        assert!(sc > s2, "combined ({sc}) should beat MS2 ({s2})");
        assert!(
            (1.05..2.6).contains(&sc),
            "combined GPU speedup {sc} outside the paper's 1.56×(avg)–1.79×(max) band neighborhood"
        );
    }

    #[test]
    fn combined_ms_saves_energy() {
        let m = v100();
        let s = shape(1024, 3, 100);
        let base = m.estimate(&s, &OptEffects::baseline()).energy_j;
        let comb = m.estimate(&s, &OptEffects::combined(0.35, 0.49)).energy_j;
        let saving = 1.0 - comb / base;
        assert!(
            (0.10..0.60).contains(&saving),
            "energy saving {saving} vs paper's 35.26 % average"
        );
    }

    #[test]
    fn v100_beats_rtx5000() {
        let s = shape(2048, 3, 35);
        let base = OptEffects::baseline();
        let v = v100().estimate(&s, &base);
        let r = GpuModel::new(GpuSpec::rtx5000()).estimate(&s, &base);
        assert!(v.tflops > r.tflops);
    }

    #[test]
    fn time_breakdown_sums_to_total() {
        let e = v100().estimate(&shape(1024, 3, 35), &OptEffects::baseline());
        let sum = e.t_gemm_s + e.t_mem_s + e.t_stall_s;
        assert!((sum - e.time_s).abs() < 1e-12);
        assert!(e.t_gemm_s > e.t_mem_s, "GEMM dominates at this scale");
    }

    #[test]
    fn parallel_efficiency_is_monotone_and_bounded() {
        let mut prev = 0.0;
        for h in [64, 128, 256, 512, 1024, 2048, 4096] {
            let e = GpuModel::parallel_efficiency(h);
            assert!(e > prev);
            assert!(e < MAX_PARALLEL_EFF);
            prev = e;
        }
    }
}
