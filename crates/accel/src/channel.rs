//! The channel architecture (paper Sec. V-D, Fig. 13b): 32 Omni-PEs
//! under one channel controller with a broadcast queue and an
//! activation module holding a single sigmoid and a single tanh
//! lookup-table unit for the whole channel.

use crate::pe::{OmniPe, PeStats};
use eta_tensor::activation::{ActivationLut, LutKind};
use eta_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// PEs per channel (paper: 32).
pub const PES_PER_CHANNEL: usize = 32;

/// Entries in each activation lookup table.
pub const ACT_LUT_ENTRIES: usize = 2048;

/// Input range covered by the activation lookup tables.
pub const ACT_LUT_RANGE: f32 = 8.0;

/// Cycle/op counters from one channel-level kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Makespan cycles of the kernel on this channel.
    pub cycles: u64,
    /// Busy PE-cycles (for utilization accounting).
    pub busy_pe_cycles: u64,
    /// Multiplier ops across all PEs.
    pub mult_ops: u64,
    /// Adder ops across all PEs.
    pub add_ops: u64,
    /// Activation-unit evaluations.
    pub act_ops: u64,
    /// Words pushed through the broadcast queue.
    pub broadcast_words: u64,
}

impl ChannelStats {
    /// Sequentially composes another kernel's stats after this one.
    pub fn merge(&mut self, other: &ChannelStats) {
        self.cycles += other.cycles;
        self.busy_pe_cycles += other.busy_pe_cycles;
        self.mult_ops += other.mult_ops;
        self.add_ops += other.add_ops;
        self.act_ops += other.act_ops;
        self.broadcast_words += other.broadcast_words;
    }
}

/// One channel of 32 Omni-PEs.
#[derive(Debug, Clone)]
pub struct Channel {
    pe: OmniPe,
    sigmoid: ActivationLut,
    tanh: ActivationLut,
}

impl Default for Channel {
    fn default() -> Self {
        Channel {
            pe: OmniPe::default(),
            sigmoid: ActivationLut::new(LutKind::Sigmoid, ACT_LUT_RANGE, ACT_LUT_ENTRIES),
            tanh: ActivationLut::new(LutKind::Tanh, ACT_LUT_RANGE, ACT_LUT_ENTRIES),
        }
    }
}

impl Channel {
    /// Creates a channel with default LUT precision and PE latencies.
    pub fn new() -> Self {
        Self::default()
    }

    /// Matrix-vector product `w · x` with output rows distributed across
    /// the 32 PEs in waves.
    ///
    /// # Panics
    ///
    /// Panics if `w.cols() != x.len()`.
    pub fn matvec(&self, w: &Matrix, x: &[f32]) -> (Vec<f32>, ChannelStats) {
        assert_eq!(w.cols(), x.len(), "matvec dimension mismatch");
        let rows = w.rows();
        let mut out = Vec::with_capacity(rows);
        let mut per_pe = PeStats::default();
        for r in 0..rows {
            let (v, s) = self.pe.mac_stream(w.row(r), x);
            out.push(v);
            if r == 0 {
                per_pe = s;
            }
        }
        let waves = rows.div_ceil(PES_PER_CHANNEL);
        let cycles = waves as u64 * per_pe.cycles.max(1);
        let stats = ChannelStats {
            cycles,
            busy_pe_cycles: rows as u64 * per_pe.cycles.max(1),
            mult_ops: (rows * x.len()) as u64,
            add_ops: (rows * x.len().saturating_sub(1)) as u64,
            act_ops: 0,
            // The x vector is broadcast once per wave to all PEs.
            broadcast_words: (waves * x.len()) as u64,
        };
        (out, stats)
    }

    /// Element-wise product of two vectors spread across the PEs.
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ.
    pub fn ew_mul(&self, a: &[f32], b: &[f32]) -> (Vec<f32>, ChannelStats) {
        let (out, pe_stats) = self.pe.ew_mul(a, b);
        let stats = Self::ew_stats(a.len(), pe_stats.mult_ops, 0);
        (out, stats)
    }

    /// Element-wise sum of two vectors spread across the PEs.
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ.
    pub fn ew_add(&self, a: &[f32], b: &[f32]) -> (Vec<f32>, ChannelStats) {
        let (out, pe_stats) = self.pe.ew_add(a, b);
        let stats = Self::ew_stats(a.len(), 0, pe_stats.add_ops);
        (out, stats)
    }

    fn ew_stats(n: usize, mult_ops: u64, add_ops: u64) -> ChannelStats {
        let lanes = PES_PER_CHANNEL as u64;
        let cycles = (n as u64).div_ceil(lanes).max(1) + 4;
        ChannelStats {
            cycles,
            busy_pe_cycles: n as u64,
            mult_ops,
            add_ops,
            act_ops: 0,
            broadcast_words: 0,
        }
    }

    /// Runs the channel's single sigmoid unit over a vector (one
    /// evaluation per cycle — the activation module is deliberately
    /// narrow because activation work is small relative to MatMul).
    pub fn sigmoid(&self, v: &[f32]) -> (Vec<f32>, ChannelStats) {
        let out = v.iter().map(|&x| self.sigmoid.eval(x)).collect();
        (out, Self::act_stats(v.len()))
    }

    /// Runs the channel's single tanh unit over a vector.
    pub fn tanh(&self, v: &[f32]) -> (Vec<f32>, ChannelStats) {
        let out = v.iter().map(|&x| self.tanh.eval(x)).collect();
        (out, Self::act_stats(v.len()))
    }

    fn act_stats(n: usize) -> ChannelStats {
        ChannelStats {
            cycles: n as u64,
            busy_pe_cycles: 0,
            mult_ops: 0,
            add_ops: 0,
            act_ops: n as u64,
            broadcast_words: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_tensor::init;

    #[test]
    fn matvec_matches_reference() {
        let ch = Channel::new();
        let w = init::uniform(48, 16, -1.0, 1.0, 3);
        let x: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) / 4.0).collect();
        let (out, stats) = ch.matvec(&w, &x);
        let xm = Matrix::from_vec(16, 1, x.clone()).unwrap();
        let reference = w.matmul(&xm).unwrap();
        for (o, r) in out.iter().zip(reference.as_slice().iter()) {
            assert!((o - r).abs() < 1e-4, "{o} vs {r}");
        }
        // 48 rows over 32 PEs = 2 waves.
        assert_eq!(stats.mult_ops, 48 * 16);
        assert!(stats.cycles >= 2 * 16);
    }

    #[test]
    fn matvec_wave_count_scales_cycles() {
        let ch = Channel::new();
        let x = vec![1.0f32; 64];
        let w32 = Matrix::filled(32, 64, 0.5);
        let w64 = Matrix::filled(64, 64, 0.5);
        let (_, s32) = ch.matvec(&w32, &x);
        let (_, s64) = ch.matvec(&w64, &x);
        assert_eq!(s64.cycles, 2 * s32.cycles, "two waves take twice as long");
    }

    #[test]
    fn ew_ops_distribute_over_pes() {
        let ch = Channel::new();
        let a = vec![2.0f32; 320];
        let b = vec![3.0f32; 320];
        let (m, sm) = ch.ew_mul(&a, &b);
        assert!(m.iter().all(|&v| v == 6.0));
        // 320 elements over 32 PEs = 10 cycles + pipeline fill.
        assert_eq!(sm.cycles, 14);
        let (s, ss) = ch.ew_add(&a, &b);
        assert!(s.iter().all(|&v| v == 5.0));
        assert_eq!(ss.add_ops, 320);
    }

    #[test]
    fn activation_units_are_serial_and_accurate() {
        let ch = Channel::new();
        let v: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) / 10.0).collect();
        let (sig, stats) = ch.sigmoid(&v);
        assert_eq!(stats.cycles, 100, "one evaluation per cycle");
        for (&x, &y) in v.iter().zip(sig.iter()) {
            assert!((y - eta_tensor::activation::sigmoid(x)).abs() < 2e-3);
        }
        let (th, _) = ch.tanh(&v);
        for (&x, &y) in v.iter().zip(th.iter()) {
            assert!((y - x.tanh()).abs() < 2e-3);
        }
    }

    #[test]
    fn stats_merge_composes_sequentially() {
        let mut a = ChannelStats {
            cycles: 5,
            busy_pe_cycles: 100,
            mult_ops: 10,
            add_ops: 5,
            act_ops: 1,
            broadcast_words: 7,
        };
        a.merge(&a.clone());
        assert_eq!(a.cycles, 10);
        assert_eq!(a.broadcast_words, 14);
    }
}
