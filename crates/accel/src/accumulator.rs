//! The adder-based streaming accumulator (paper Sec. V-B, Fig. 11,
//! Table III).
//!
//! A floating-point adder with an `L`-cycle pipeline cannot naively
//! accumulate a stream (each add would wait `L` cycles for the previous
//! sum). The η-LSTM design instead pairs whatever operands are
//! available — fresh stream inputs and completed partial sums — and
//! issues one add per cycle, keeping up to `L` partial sums in flight.
//! When the stream ends, the surviving partials are reduced in a final
//! tree. For `n ≫ L` the drain adds only `O(L·log₂ L)` cycles — the
//! paper's "<2.87 % latency overhead beyond 1024 inputs" claim, which
//! [`AccumulatorSim`] verifies by direct simulation.

use serde::{Deserialize, Serialize};

/// Pipeline latency (cycles) of the FP32 adder in the paper's design.
pub const PAPER_ADD_LATENCY: u32 = 8;

/// One row of the Fig. 11-style timing chart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingEvent {
    /// Cycle at which the add issued.
    pub cycle: u64,
    /// Human-readable first operand (e.g. `"A"`, `"A+B"`).
    pub lhs: String,
    /// Human-readable second operand.
    pub rhs: String,
    /// Cycle at which the result exits the adder.
    pub done_cycle: u64,
}

/// Result of simulating one accumulation stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccumulationRun {
    /// Total cycles from first input to final sum.
    pub cycles: u64,
    /// The accumulated value.
    pub sum: f32,
    /// Issue log (the Fig. 11 chart).
    pub events: Vec<TimingEvent>,
}

impl AccumulationRun {
    /// Cycles beyond the ideal `n + L` streaming bound, as a fraction of
    /// the total.
    pub fn drain_overhead(&self, n_inputs: u64, latency: u32) -> f64 {
        let ideal = n_inputs + latency as u64;
        if self.cycles <= ideal {
            0.0
        } else {
            (self.cycles - ideal) as f64 / self.cycles as f64
        }
    }
}

/// Cycle-accurate simulator of the adder-based streaming accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccumulatorSim {
    /// Adder pipeline latency in cycles.
    pub add_latency: u32,
}

impl Default for AccumulatorSim {
    fn default() -> Self {
        AccumulatorSim {
            add_latency: PAPER_ADD_LATENCY,
        }
    }
}

#[derive(Debug, Clone)]
struct Operand {
    value: f32,
    label: String,
}

#[derive(Debug, Clone)]
struct InFlight {
    done_cycle: u64,
    value: f32,
    label: String,
}

impl AccumulatorSim {
    /// Creates a simulator with the given adder latency.
    ///
    /// # Panics
    ///
    /// Panics if `add_latency == 0`.
    pub fn new(add_latency: u32) -> Self {
        assert!(add_latency > 0, "adder latency must be at least one cycle");
        AccumulatorSim { add_latency }
    }

    /// Simulates accumulating `values` arriving one per cycle starting at
    /// cycle 1, with symbolic labels for the timing chart.
    ///
    /// Returns the exact cycle count, the sum, and the issue log. For an
    /// empty stream the sum is `0.0` in zero cycles; a single value
    /// passes through without touching the adder.
    pub fn run_labeled(&self, values: &[f32], labels: &[String]) -> AccumulationRun {
        assert_eq!(values.len(), labels.len(), "label count mismatch");
        let n = values.len();
        if n == 0 {
            return AccumulationRun {
                cycles: 0,
                sum: 0.0,
                events: Vec::new(),
            };
        }
        if n == 1 {
            return AccumulationRun {
                cycles: 1,
                sum: values[0],
                events: Vec::new(),
            };
        }

        let latency = self.add_latency as u64;
        let mut pool: Vec<Operand> = Vec::new();
        let mut in_flight: Vec<InFlight> = Vec::new();
        let mut events = Vec::new();
        let mut cycle: u64 = 0;
        let mut next_input = 0usize;
        let mut last_result_cycle = 0u64;

        loop {
            cycle += 1;
            // Retire completed adds into the pool.
            let mut i = 0;
            while i < in_flight.len() {
                if in_flight[i].done_cycle == cycle {
                    let f = in_flight.remove(i);
                    last_result_cycle = cycle;
                    pool.push(Operand {
                        value: f.value,
                        label: f.label,
                    });
                } else {
                    i += 1;
                }
            }
            // One stream input arrives per cycle.
            if next_input < n {
                pool.push(Operand {
                    value: values[next_input],
                    label: labels[next_input].clone(),
                });
                next_input += 1;
            }
            // Issue one add per cycle when two operands are ready.
            if pool.len() >= 2 {
                let a = pool.remove(0);
                let b = pool.remove(0);
                let done = cycle + latency;
                events.push(TimingEvent {
                    cycle,
                    lhs: a.label.clone(),
                    rhs: b.label.clone(),
                    done_cycle: done,
                });
                in_flight.push(InFlight {
                    done_cycle: done,
                    value: a.value + b.value,
                    label: format!("{}+{}", a.label, b.label),
                });
            }
            // Finished: everything consumed and exactly one value left.
            if next_input == n && in_flight.is_empty() && pool.len() == 1 {
                return AccumulationRun {
                    cycles: last_result_cycle.max(cycle),
                    sum: pool[0].value,
                    events,
                };
            }
        }
    }

    /// Simulates accumulating `values` with automatic labels
    /// (`A, B, C, …` then `v26, v27, …`).
    pub fn run(&self, values: &[f32]) -> AccumulationRun {
        let labels: Vec<String> = (0..values.len())
            .map(|i| {
                if i < 26 {
                    char::from(b'A' + i as u8).to_string()
                } else {
                    format!("v{i}")
                }
            })
            .collect();
        self.run_labeled(values, &labels)
    }

    /// Cycle count for accumulating `n` inputs (values irrelevant to
    /// timing).
    pub fn cycles_for(&self, n: usize) -> u64 {
        self.run(&vec![1.0f32; n]).cycles
    }
}

/// Synthesis resource/power figures for an accumulator implementation
/// (paper Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccumulatorResources {
    /// Design name.
    pub name: String,
    /// Lookup tables.
    pub lut: u32,
    /// Flip-flops.
    pub ff: u32,
    /// Total dynamic power, watts.
    pub dynamic_power_w: f64,
    /// Reference pipeline/drain latency figure from the table, cycles.
    pub latency_cycles: u32,
}

impl AccumulatorResources {
    /// The Xilinx floating-point accumulator IP (Table III row 1):
    /// translates FP32 accumulation into 64-bit fixed point —
    /// resource-hungry but low-latency.
    pub fn xilinx_ip() -> Self {
        AccumulatorResources {
            name: "Xilinx IP".to_string(),
            lut: 821,
            ff: 969,
            dynamic_power_w: 0.100,
            latency_cycles: 20,
        }
    }

    /// The η-LSTM adder-based design (Table III row 2).
    pub fn eta_design() -> Self {
        AccumulatorResources {
            name: "Adder-based (ours)".to_string(),
            lut: 463,
            ff: 608,
            dynamic_power_w: 0.083,
            latency_cycles: 50,
        }
    }

    /// Fractional LUT saving of `self` against `other`.
    pub fn lut_saving_vs(&self, other: &AccumulatorResources) -> f64 {
        1.0 - self.lut as f64 / other.lut as f64
    }

    /// Fractional FF saving of `self` against `other`.
    pub fn ff_saving_vs(&self, other: &AccumulatorResources) -> f64 {
        1.0 - self.ff as f64 / other.ff as f64
    }

    /// Fractional power saving of `self` against `other`.
    pub fn power_saving_vs(&self, other: &AccumulatorResources) -> f64 {
        1.0 - self.dynamic_power_w / other.dynamic_power_w
    }
}

#[cfg(feature = "telemetry")]
impl AccumulatorSim {
    /// [`AccumulatorSim::run`] plus metric recording.
    ///
    /// For a non-empty stream, observes the drain overhead
    /// ([`AccumulationRun::drain_overhead`]) into the
    /// `accel_accumulator_stall_fraction` histogram and counts the cycles
    /// beyond the ideal `n + L` streaming bound into
    /// `accel_accumulator_stall_cycles_total`.
    pub fn run_instrumented(
        &self,
        values: &[f32],
        telemetry: Option<&eta_telemetry::Telemetry>,
    ) -> AccumulationRun {
        let run = self.run(values);
        if let Some(t) = telemetry {
            if !values.is_empty() {
                let n = values.len() as u64;
                t.observe(
                    eta_telemetry::keys::ACCEL_ACCUMULATOR_STALL_FRACTION,
                    run.drain_overhead(n, self.add_latency),
                );
                let ideal = n + self.add_latency as u64;
                t.incr(
                    eta_telemetry::keys::ACCEL_ACCUMULATOR_STALL_CYCLES_TOTAL,
                    run.cycles.saturating_sub(ideal),
                );
            }
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_is_exact_for_integers() {
        let sim = AccumulatorSim::new(8);
        let values: Vec<f32> = (1..=100).map(|v| v as f32).collect();
        let run = sim.run(&values);
        assert_eq!(run.sum, 5050.0);
    }

    #[test]
    fn empty_and_single_streams() {
        let sim = AccumulatorSim::default();
        assert_eq!(sim.run(&[]).cycles, 0);
        let one = sim.run(&[3.5]);
        assert_eq!(one.cycles, 1);
        assert_eq!(one.sum, 3.5);
        assert!(one.events.is_empty());
    }

    #[test]
    fn figure11_example_two_cycle_adder_eight_values() {
        // The paper's Fig. 11 walks eight values (A..H) through a
        // 2-cycle adder: first add issues at cycle 1 (A,B), the final
        // sum appears at cycle 12.
        let sim = AccumulatorSim::new(2);
        let run = sim.run(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(run.sum, 36.0);
        assert_eq!(run.events.len(), 7, "n−1 adds for n values");
        let first = &run.events[0];
        assert_eq!((first.lhs.as_str(), first.rhs.as_str()), ("A", "B"));
        assert_eq!(
            run.cycles, 12,
            "Fig. 11 shows the final sum of A..H ready at cycle 12"
        );
    }

    #[test]
    fn streaming_throughput_approaches_one_per_cycle() {
        let sim = AccumulatorSim::new(8);
        let c1024 = sim.cycles_for(1024);
        // The paper claims <2.87 % overhead beyond 1024 inputs.
        let run = sim.run(&vec![1.0; 1024]);
        let overhead = run.drain_overhead(1024, 8);
        assert!(
            overhead < 0.0287,
            "drain overhead {overhead} exceeds the paper's 2.87 % bound ({c1024} cycles)"
        );
    }

    #[test]
    fn overhead_shrinks_with_stream_length() {
        let sim = AccumulatorSim::new(8);
        let short = sim.run(&vec![1.0; 64]).drain_overhead(64, 8);
        let long = sim.run(&vec![1.0; 4096]).drain_overhead(4096, 8);
        assert!(long < short);
    }

    #[test]
    fn cycles_grow_monotonically_with_inputs() {
        let sim = AccumulatorSim::new(4);
        let mut prev = 0;
        for n in [2usize, 4, 8, 16, 32, 64] {
            let c = sim.cycles_for(n);
            assert!(c > prev, "cycles must grow: {n} -> {c}");
            prev = c;
        }
    }

    #[test]
    fn one_add_issues_per_cycle_at_steady_state() {
        let sim = AccumulatorSim::new(8);
        let run = sim.run(&vec![1.0; 256]);
        // No two events share an issue cycle.
        let mut cycles: Vec<u64> = run.events.iter().map(|e| e.cycle).collect();
        cycles.dedup();
        assert_eq!(cycles.len(), run.events.len());
    }

    #[test]
    fn sum_matches_sequential_reference_on_floats() {
        let sim = AccumulatorSim::new(8);
        let values: Vec<f32> = (0..500)
            .map(|i| ((i * 37 % 100) as f32 - 50.0) / 7.0)
            .collect();
        let run = sim.run(&values);
        let reference: f64 = values.iter().map(|&v| v as f64).sum();
        assert!(
            ((run.sum as f64) - reference).abs() < 1e-2,
            "tree sum {} vs reference {reference}",
            run.sum
        );
    }

    #[test]
    fn table3_resource_savings_match_paper() {
        let ours = AccumulatorResources::eta_design();
        let ip = AccumulatorResources::xilinx_ip();
        assert!(
            (ours.lut_saving_vs(&ip) - 0.4361).abs() < 0.001,
            "LUT saving"
        );
        assert!((ours.ff_saving_vs(&ip) - 0.3725).abs() < 0.001, "FF saving");
        assert!(
            (ours.power_saving_vs(&ip) - 0.17).abs() < 0.001,
            "power saving"
        );
        assert!(ours.latency_cycles > ip.latency_cycles);
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn zero_latency_rejected() {
        let _ = AccumulatorSim::new(0);
    }
}
