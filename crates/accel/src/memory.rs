//! The on-board scratchpad: an LRU-managed buffer between the HBM and
//! the channels (paper Fig. 13a).
//!
//! The machine model (`arch`) uses a closed-form rule — a layer's
//! weights re-stream per cell when they exceed half the scratchpad
//! (double-buffering), otherwise they persist per phase. This module
//! provides the mechanism-level equivalent: an [`Scratchpad`] allocator
//! with LRU eviction, plus [`simulate_weight_trace`] which plays the
//! actual per-cell access sequence of an unrolled LSTM through it. The
//! tests check the closed form against the trace in both regimes.

use eta_memsim::model::LstmShape;
use serde::{Deserialize, Serialize};

/// Result of one scratchpad access.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Access {
    /// The object was resident; no HBM traffic.
    Hit,
    /// The object was fetched from HBM, evicting the listed objects.
    Miss {
        /// Objects evicted to make room.
        evicted: Vec<u64>,
    },
}

/// An LRU-managed scratchpad of fixed byte capacity.
///
/// # Example
///
/// ```
/// use eta_accel::memory::{Access, Scratchpad};
///
/// let mut sp = Scratchpad::new(100);
/// assert!(matches!(sp.access(1, 60), Access::Miss { .. }));
/// assert_eq!(sp.access(1, 60), Access::Hit);
/// // Object 2 forces object 1 out.
/// assert!(matches!(sp.access(2, 60), Access::Miss { .. }));
/// assert!(matches!(sp.access(1, 60), Access::Miss { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scratchpad {
    capacity: u64,
    /// Resident objects in LRU order (front = least recent).
    resident: Vec<(u64, u64)>,
    hits: u64,
    misses: u64,
    hbm_bytes: u64,
}

impl Scratchpad {
    /// Creates a scratchpad of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "scratchpad needs capacity");
        Scratchpad {
            capacity,
            resident: Vec::new(),
            hits: 0,
            misses: 0,
            hbm_bytes: 0,
        }
    }

    /// Accesses object `id` of `bytes` size, fetching and evicting as
    /// needed. Objects larger than the capacity stream straight through
    /// (counted as misses, nothing evicted, nothing retained).
    pub fn access(&mut self, id: u64, bytes: u64) -> Access {
        if let Some(pos) = self.resident.iter().position(|&(rid, _)| rid == id) {
            let entry = self.resident.remove(pos);
            self.resident.push(entry);
            self.hits += 1;
            return Access::Hit;
        }
        self.misses += 1;
        self.hbm_bytes += bytes;
        if bytes > self.capacity {
            return Access::Miss {
                evicted: Vec::new(),
            };
        }
        let mut evicted = Vec::new();
        while self.used() + bytes > self.capacity {
            let (vid, _) = self.resident.remove(0);
            evicted.push(vid);
        }
        self.resident.push((id, bytes));
        Access::Miss { evicted }
    }

    /// Currently-resident bytes.
    pub fn used(&self) -> u64 {
        self.resident.iter().map(|&(_, b)| b).sum()
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// HBM bytes fetched so far.
    pub fn hbm_bytes(&self) -> u64 {
        self.hbm_bytes
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Plays one forward phase's weight-access trace through a scratchpad:
/// for `t` in `0..seq_len`, for `l` in `0..layers`, access layer `l`'s
/// weights. Returns the HBM bytes fetched.
///
/// Half the scratchpad is reserved for activations/intermediates in
/// flight (the double-buffering the closed-form rule assumes).
pub fn simulate_weight_trace(shape: &LstmShape, scratchpad_bytes: u64) -> u64 {
    let mut sp = Scratchpad::new((scratchpad_bytes / 2).max(1));
    for _t in 0..shape.seq_len {
        for l in 0..shape.layers {
            sp.access(l as u64, shape.layer_weight_bytes(l));
        }
    }
    sp.hbm_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut sp = Scratchpad::new(100);
        sp.access(1, 40);
        sp.access(2, 40);
        sp.access(1, 40); // refresh 1 → 2 becomes LRU
        match sp.access(3, 40) {
            Access::Miss { evicted } => assert_eq!(evicted, vec![2]),
            Access::Hit => panic!("3 cannot be resident"),
        }
        assert_eq!(sp.access(1, 40), Access::Hit);
    }

    #[test]
    fn oversized_objects_stream_through() {
        let mut sp = Scratchpad::new(100);
        sp.access(1, 40);
        match sp.access(2, 500) {
            Access::Miss { evicted } => assert!(evicted.is_empty()),
            Access::Hit => panic!("oversized object cannot hit"),
        }
        // Object 1 survives, object 2 was never retained.
        assert_eq!(sp.access(1, 40), Access::Hit);
        assert!(matches!(sp.access(2, 500), Access::Miss { .. }));
        assert_eq!(sp.hbm_bytes(), 40 + 500 + 500);
    }

    #[test]
    fn stats_track_accesses() {
        let mut sp = Scratchpad::new(100);
        sp.access(1, 50);
        sp.access(1, 50);
        sp.access(1, 50);
        assert_eq!(sp.hits(), 2);
        assert_eq!(sp.misses(), 1);
        assert!((sp.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(sp.used(), 50);
    }

    #[test]
    fn trace_matches_closed_form_when_weights_fit() {
        // Small layers persist: HBM traffic = one fetch per layer.
        let shape = LstmShape::new(64, 64, 2, 50, 16);
        let sp_bytes = 32 * 1024 * 1024;
        let traced = simulate_weight_trace(&shape, sp_bytes);
        assert_eq!(traced, shape.weight_bytes());
    }

    #[test]
    fn trace_matches_closed_form_when_weights_stream() {
        // A layer larger than half the scratchpad re-streams per cell.
        let shape = LstmShape::new(2048, 2048, 1, 20, 16);
        let sp_bytes = 32 * 1024 * 1024;
        assert!(shape.layer_weight_bytes(0) > sp_bytes / 2);
        let traced = simulate_weight_trace(&shape, sp_bytes);
        assert_eq!(traced, 20 * shape.layer_weight_bytes(0));
    }

    #[test]
    fn alternating_large_layers_thrash() {
        // Two layers that individually fit but jointly exceed capacity
        // evict each other every timestep — the LRU pathology the
        // double-buffer margin protects against.
        let shape = LstmShape::new(1024, 1024, 2, 10, 16);
        let wu = shape.layer_weight_bytes(0);
        let sp = 3 * wu; // half = 1.5 wu < 2 wu needed
        let traced = simulate_weight_trace(&shape, sp);
        assert_eq!(traced, 2 * 10 * wu, "both layers re-fetch every step");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Scratchpad::new(0);
    }
}
