//! Multi-channel functional execution: the gate MatVec of a cell is
//! partitioned row-wise across channels (the paper's SIMT channel
//! organization), which is what makes throughput scale with channel
//! count (Sec. V-D scalability discussion). The per-kernel makespan is
//! the slowest channel's cycles.
//!
//! Functional fidelity chains upward: [`crate::cell_exec`] verifies one
//! channel against the software cell; this module verifies the
//! partitioned execution against the single-channel engine.

use crate::cell_exec::{CellExecution, CellWeights, ChannelCellEngine};
use crate::channel::Channel;
use eta_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a partitioned kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MachineStats {
    /// Makespan cycles (the slowest channel).
    pub cycles: u64,
    /// Total busy PE-cycles across channels.
    pub busy_pe_cycles: u64,
    /// Total multiplier ops.
    pub mult_ops: u64,
}

/// A group of channels executing row-partitioned MatVec kernels.
#[derive(Debug, Clone)]
pub struct MultiChannelEngine {
    channels: Vec<Channel>,
}

impl MultiChannelEngine {
    /// Builds an engine with `n` channels.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one channel");
        MultiChannelEngine {
            channels: (0..n).map(|_| Channel::new()).collect(),
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// `w · x` with `w`'s rows split contiguously across the channels.
    ///
    /// # Panics
    ///
    /// Panics if `w.cols() != x.len()`.
    pub fn matvec(&self, w: &Matrix, x: &[f32]) -> (Vec<f32>, MachineStats) {
        assert_eq!(w.cols(), x.len(), "matvec dimension mismatch");
        let n = self.channels.len();
        let rows = w.rows();
        let per = rows.div_ceil(n);
        let mut out = Vec::with_capacity(rows);
        let mut stats = MachineStats::default();
        for (c, channel) in self.channels.iter().enumerate() {
            let lo = c * per;
            if lo >= rows {
                break;
            }
            let hi = (lo + per).min(rows);
            let slice = Matrix::from_fn(hi - lo, w.cols(), |r, col| w.get(lo + r, col));
            let (part, s) = channel.matvec(&slice, x);
            out.extend(part);
            stats.cycles = stats.cycles.max(s.cycles);
            stats.busy_pe_cycles += s.busy_pe_cycles;
            stats.mult_ops += s.mult_ops;
        }
        (out, stats)
    }

    /// Executes a whole single-sample LSTM sequence with the gate
    /// MatVecs partitioned across the channels; the element-wise chain
    /// and activations run on channel 0 (they are tiny relative to the
    /// MatVecs). Returns the per-step outputs plus the partitioned
    /// MatVec makespan statistics.
    pub fn execute_sequence(
        &self,
        weights: &CellWeights,
        xs: &[Vec<f32>],
    ) -> (Vec<crate::cell_exec::CellOutputs>, MachineStats) {
        let h = weights.hidden();
        let mut engine = ChannelCellEngine::baseline();
        let mut h_prev = vec![0.0f32; h];
        let mut s_prev = vec![0.0f32; h];
        let mut outputs = Vec::with_capacity(xs.len());
        let mut stats = MachineStats::default();
        for x in xs {
            // Partitioned MatVecs give the timing…
            let (_, sw) = self.matvec(&weights.w, x);
            let (_, su) = self.matvec(&weights.u, &h_prev);
            stats.cycles += sw.cycles + su.cycles;
            stats.busy_pe_cycles += sw.busy_pe_cycles + su.busy_pe_cycles;
            stats.mult_ops += sw.mult_ops + su.mult_ops;
            // …and the single-channel engine provides the functional
            // reference for the whole cell (same arithmetic).
            let exec: CellExecution = engine.execute(weights, x, &h_prev, &s_prev);
            h_prev = exec.outputs.h.clone();
            s_prev = exec.outputs.s.clone();
            outputs.push(exec.outputs);
        }
        (outputs, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_tensor::init;

    #[test]
    fn partitioned_matvec_matches_single_channel() {
        let w = init::uniform(96, 24, -1.0, 1.0, 5);
        let x: Vec<f32> = (0..24).map(|i| (i as f32 - 12.0) / 6.0).collect();
        let single = MultiChannelEngine::new(1);
        let multi = MultiChannelEngine::new(4);
        let (a, _) = single.matvec(&w, &x);
        let (b, _) = multi.matvec(&w, &x);
        for (u, v) in a.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn more_channels_shrink_the_makespan() {
        let w = init::uniform(256, 64, -1.0, 1.0, 7);
        let x = vec![0.5f32; 64];
        let (_, s1) = MultiChannelEngine::new(1).matvec(&w, &x);
        let (_, s4) = MultiChannelEngine::new(4).matvec(&w, &x);
        let (_, s8) = MultiChannelEngine::new(8).matvec(&w, &x);
        assert!(s4.cycles < s1.cycles);
        assert!(s8.cycles <= s4.cycles);
        // 256 rows over 1 channel = 8 waves; over 8 channels = 1 wave.
        assert_eq!(s1.cycles, 8 * s8.cycles);
        // Work is conserved.
        assert_eq!(s1.mult_ops, s8.mult_ops);
    }

    #[test]
    fn uneven_partitions_cover_all_rows() {
        let w = init::uniform(33, 8, -1.0, 1.0, 9);
        let x = vec![1.0f32; 8];
        let engine = MultiChannelEngine::new(5);
        let (out, _) = engine.matvec(&w, &x);
        assert_eq!(out.len(), 33);
        let xm = Matrix::from_vec(8, 1, x.clone()).unwrap();
        let reference = w.matmul(&xm).unwrap();
        for (a, b) in out.iter().zip(reference.as_slice().iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn sequence_execution_scales_and_stays_functional() {
        // 4H = 64 gate rows: one channel needs two 32-PE waves, four
        // channels finish in one.
        let weights = CellWeights {
            w: init::xavier_uniform(64, 16, 3),
            u: init::xavier_uniform(64, 16, 4),
            b: vec![0.0; 64],
        };
        let xs: Vec<Vec<f32>> = (0..4)
            .map(|t| (0..16).map(|i| ((t * 3 + i) as f32 - 8.0) / 8.0).collect())
            .collect();
        let (out1, s1) = MultiChannelEngine::new(1).execute_sequence(&weights, &xs);
        let (out4, s4) = MultiChannelEngine::new(4).execute_sequence(&weights, &xs);
        assert_eq!(out1.len(), 4);
        // Functional outputs are partition-independent.
        for (a, b) in out1.iter().zip(out4.iter()) {
            for (x, y) in a.h.iter().zip(b.h.iter()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
        assert!(
            s4.cycles < s1.cycles,
            "partitioning must cut the MatVec makespan"
        );
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = MultiChannelEngine::new(0);
    }
}
