//! # eta-accel
//!
//! Transaction-level simulator of the η-LSTM accelerator (paper Sec. V)
//! with a cycle-accurate micro-model of its processing element.
//!
//! The hardware hierarchy follows the paper's Fig. 13:
//!
//! - [`accumulator`] — the adder-based streaming accumulator
//!   (Sec. V-B, Fig. 11, Table III), simulated cycle-by-cycle;
//! - [`pe`] — the Omni-PE: one multiplier + one pipelined adder +
//!   muxes, dynamically configured for matrix-vector MAC streams,
//!   element-wise multiply/add, and outer products;
//! - [`channel`] — 32 Omni-PEs sharing a channel controller, a
//!   broadcast queue, and an activation module (one sigmoid + one tanh
//!   lookup-table unit);
//! - [`dma`] — the customized DMA with its compression and decoder
//!   modules and WT/RD data+index queues (Fig. 14);
//! - [`scheduler`] — the Runtime Resource Allocation (R2A) scheduler
//!   with swing PEs/channels (Sec. V-C);
//! - [`energy`] — per-event energy constants and the machine energy
//!   model;
//! - [`arch`] — the full-machine simulation of LSTM training, plus the
//!   paper's comparison architectures (LSTM-Inf, Static-Arch,
//!   Dyn-Arch).
//!
//! The simulator is transaction-level: kernels (MatMul / element-wise /
//! outer-product tiles) are scheduled onto channel groups with cycle
//! costs derived from the PE micro-model, and DMA transfers contend for
//! HBM bandwidth. Fully cycle-accurate per-MAC simulation is reserved
//! for the PE/accumulator level, where the paper's Table III claims are
//! verified directly.
//!
//! # Example
//!
//! ```
//! use eta_accel::arch::{AccelConfig, ArchKind, EtaAccel};
//! use eta_memsim::model::{LstmShape, OptEffects};
//!
//! let accel = EtaAccel::new(AccelConfig::paper_4board(), ArchKind::DynArch);
//! let shape = LstmShape::new(512, 512, 2, 10, 32);
//! let report = accel.simulate(&shape, &OptEffects::baseline());
//! assert!(report.time_s > 0.0);
//! assert!(report.utilization > 0.0 && report.utilization <= 1.0);
//! ```

pub mod accumulator;
pub mod arch;
pub mod cell_exec;
pub mod channel;
pub mod dma;
pub mod energy;
pub mod machine_exec;
pub mod memory;
pub mod pe;
pub mod scheduler;
pub mod timeline;
