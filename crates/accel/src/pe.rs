//! The Omni-PE (paper Sec. V-B, Fig. 12): one multiplier, one pipelined
//! adder, four MUXes and a partial-output queue, dynamically configured
//! to execute every operation class LSTM training needs.
//!
//! | Mode | Multiplier | Adder | Output path |
//! |------|-----------|-------|-------------|
//! | matrix-vector (`·`) | active | streaming accumulator | partial-output queue |
//! | element-wise `⊙` / outer `⊗` | active | bypassed | direct |
//! | element-wise `+` | bypassed | active | partial-output queue |
//!
//! The functional methods actually compute (used by the channel-level
//! verification tests); the cycle counts come from the streaming model:
//! one operand pair per cycle, plus pipeline fill and the accumulator
//! drain measured by the cycle-accurate
//! [`crate::accumulator::AccumulatorSim`].

use crate::accumulator::AccumulatorSim;
use serde::{Deserialize, Serialize};

/// Multiplier pipeline latency, cycles (Xilinx FP32 multiplier at
/// 500 MHz).
pub const MULT_LATENCY: u32 = 4;

/// Operating mode of an Omni-PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeMode {
    /// Matrix-vector multiply-accumulate (inner product).
    MatVec,
    /// Element-wise multiply (also used for outer products — same
    /// datapath, broadcast operand).
    EwMul,
    /// Element-wise add.
    EwAdd,
}

/// Operation/cycle counters from one PE-level execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PeStats {
    /// Cycles occupied.
    pub cycles: u64,
    /// Multiplier operations issued.
    pub mult_ops: u64,
    /// Adder operations issued.
    pub add_ops: u64,
}

impl PeStats {
    /// Merges another stat block into this one (sequential composition:
    /// cycles add).
    pub fn merge(&mut self, other: &PeStats) {
        self.cycles += other.cycles;
        self.mult_ops += other.mult_ops;
        self.add_ops += other.add_ops;
    }
}

/// One Omni-PE.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OmniPe {
    accumulator: AccumulatorSim,
}

impl OmniPe {
    /// Creates a PE with the given adder pipeline latency.
    pub fn new(add_latency: u32) -> Self {
        OmniPe {
            accumulator: AccumulatorSim::new(add_latency),
        }
    }

    /// Inner product of two equal-length streams (MatVec mode):
    /// multiplier feeds the streaming accumulator.
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ.
    pub fn mac_stream(&self, a: &[f32], b: &[f32]) -> (f32, PeStats) {
        assert_eq!(a.len(), b.len(), "mac_stream operand length mismatch");
        let products: Vec<f32> = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).collect();
        let run = self.accumulator.run(&products);
        let stats = PeStats {
            cycles: MULT_LATENCY as u64 + run.cycles,
            mult_ops: a.len() as u64,
            add_ops: a.len().saturating_sub(1) as u64,
        };
        (run.sum, stats)
    }

    /// Element-wise product (EwMul mode): adder bypassed, one result per
    /// cycle after pipeline fill.
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ.
    pub fn ew_mul(&self, a: &[f32], b: &[f32]) -> (Vec<f32>, PeStats) {
        assert_eq!(a.len(), b.len(), "ew_mul operand length mismatch");
        let out: Vec<f32> = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).collect();
        let stats = PeStats {
            cycles: MULT_LATENCY as u64 + a.len() as u64,
            mult_ops: a.len() as u64,
            add_ops: 0,
        };
        (out, stats)
    }

    /// Element-wise sum (EwAdd mode): multiplier bypassed.
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ.
    pub fn ew_add(&self, a: &[f32], b: &[f32]) -> (Vec<f32>, PeStats) {
        assert_eq!(a.len(), b.len(), "ew_add operand length mismatch");
        let out: Vec<f32> = a.iter().zip(b.iter()).map(|(&x, &y)| x + y).collect();
        let stats = PeStats {
            cycles: self.accumulator.add_latency as u64 + a.len() as u64,
            mult_ops: 0,
            add_ops: a.len() as u64,
        };
        (out, stats)
    }

    /// One row of an outer product: a broadcast scalar times a vector
    /// (EwMul datapath with the broadcast queue supplying `scalar`).
    pub fn outer_row(&self, scalar: f32, v: &[f32]) -> (Vec<f32>, PeStats) {
        let out: Vec<f32> = v.iter().map(|&x| scalar * x).collect();
        let stats = PeStats {
            cycles: MULT_LATENCY as u64 + v.len() as u64,
            mult_ops: v.len() as u64,
            add_ops: 0,
        };
        (out, stats)
    }

    /// Cycles for an `n`-element inner product (timing only).
    pub fn mac_cycles(&self, n: usize) -> u64 {
        MULT_LATENCY as u64 + self.accumulator.cycles_for(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_stream_computes_dot_product() {
        let pe = OmniPe::default();
        let (sum, stats) = pe.mac_stream(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        assert_eq!(sum, 32.0);
        assert_eq!(stats.mult_ops, 3);
        assert_eq!(stats.add_ops, 2);
        assert!(stats.cycles > 3);
    }

    #[test]
    fn ew_modes_compute_elementwise() {
        let pe = OmniPe::default();
        let (m, sm) = pe.ew_mul(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(m, vec![3.0, 8.0]);
        assert_eq!(sm.add_ops, 0);
        let (a, sa) = pe.ew_add(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(a, vec![4.0, 6.0]);
        assert_eq!(sa.mult_ops, 0);
    }

    #[test]
    fn outer_row_broadcasts_scalar() {
        let pe = OmniPe::default();
        let (row, _) = pe.outer_row(2.0, &[1.0, -1.0, 0.5]);
        assert_eq!(row, vec![2.0, -2.0, 1.0]);
    }

    #[test]
    fn long_mac_stream_is_near_one_per_cycle() {
        let pe = OmniPe::default();
        let cycles = pe.mac_cycles(2048);
        assert!(
            (cycles as f64) < 2048.0 * 1.05,
            "2048-MAC stream took {cycles} cycles — streaming broken"
        );
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = PeStats {
            cycles: 10,
            mult_ops: 5,
            add_ops: 4,
        };
        a.merge(&PeStats {
            cycles: 3,
            mult_ops: 2,
            add_ops: 1,
        });
        assert_eq!(a.cycles, 13);
        assert_eq!(a.mult_ops, 7);
        assert_eq!(a.add_ops, 5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_operands_panic() {
        let pe = OmniPe::default();
        let _ = pe.mac_stream(&[1.0], &[1.0, 2.0]);
    }
}
