//! The full η-LSTM machine (paper Sec. V-D, Fig. 13a) and the paper's
//! comparison architectures.
//!
//! The simulated assembly follows the paper's evaluation setup: four
//! Xilinx VCU128 boards at 500 MHz, 40 channels × 32 Omni-PEs per board,
//! HBM at 224 GB/s per board, with the training batch split evenly
//! across boards (weights replicated per board). Each Omni-PE's
//! multiplier/adder pair is implemented as a dual-lane DSP group
//! ([`AccelConfig::lanes_per_pe`] = 2), putting the 4-board peak at
//! `4 · 40 · 32 · 2 · 2 FLOPs · 500 MHz ≈ 10.2 TFLOPS` — consistent
//! with the paper's positioning of the four-board assembly against one
//! V100's achieved LSTM-training throughput.
//!
//! Comparison architectures (paper Sec. VI-A):
//!
//! - [`ArchKind::LstmInf`] — an inference-accelerator-style design with
//!   unified heavyweight PEs (every PE carries its own accumulation and
//!   activation logic → ~45 % area overhead → proportionally fewer PEs
//!   in the same budget) and static resource allocation;
//! - [`ArchKind::StaticArch`] — Omni-PEs but a static MatMul/EW
//!   partition (TREC10-derived);
//! - [`ArchKind::DynArch`] — Omni-PEs + the R2A scheduler
//!   (the η-LSTM hardware; run it with MS1/MS2 effects to get the full
//!   η-LSTM system).

use crate::energy::{self, EnergyBreakdown, EnergyConsts, EnergyEvents};
use crate::scheduler::{self, PhaseTiming, Workload, STATIC_EW_FRACTION};
use eta_memsim::model::{self, LstmShape, OptEffects};
use serde::{Deserialize, Serialize};

/// Fraction of the gradient all-reduce exposed on the critical path
/// (the rest overlaps with the tail of backpropagation via per-layer
/// aggregation).
pub const ALLREDUCE_EXPOSED: f64 = 0.3;

/// Machine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelConfig {
    /// FPGA boards in the assembly.
    pub boards: usize,
    /// Channels per board.
    pub channels_per_board: usize,
    /// Omni-PEs per channel.
    pub pes_per_channel: usize,
    /// Vector lanes per PE (DSP pairing).
    pub lanes_per_pe: usize,
    /// Clock, Hz.
    pub freq_hz: f64,
    /// HBM bandwidth per board, bytes/s.
    pub hbm_bytes_per_sec_per_board: f64,
    /// Scratchpad capacity per board, bytes.
    pub scratchpad_bytes: u64,
    /// Inter-board interconnect bandwidth per board, bytes/s (PCIe-class
    /// host links used for the gradient all-reduce).
    pub interconnect_bytes_per_sec: f64,
}

impl AccelConfig {
    /// The paper's evaluation machine: 4 VCU128 boards, 40 channels
    /// each, 224 GB/s HBM per board.
    pub fn paper_4board() -> Self {
        AccelConfig {
            boards: 4,
            channels_per_board: 40,
            pes_per_channel: 32,
            lanes_per_pe: 2,
            freq_hz: 500e6,
            hbm_bytes_per_sec_per_board: 224e9,
            scratchpad_bytes: 32 * 1024 * 1024,
            interconnect_bytes_per_sec: 32e9,
        }
    }

    /// Total channels across boards.
    pub fn total_channels(&self) -> usize {
        self.boards * self.channels_per_board
    }

    /// PE operations per cycle across the whole assembly (before any
    /// area scaling).
    pub fn ops_per_cycle(&self) -> f64 {
        (self.total_channels() * self.pes_per_channel * self.lanes_per_pe) as f64
    }

    /// Peak throughput in FLOPS (one MAC = two FLOPs).
    pub fn peak_flops(&self) -> f64 {
        self.ops_per_cycle() * 2.0 * self.freq_hz
    }

    /// Aggregate HBM bandwidth, bytes/s.
    pub fn total_hbm_bytes_per_sec(&self) -> f64 {
        self.boards as f64 * self.hbm_bytes_per_sec_per_board
    }
}

/// Which architecture variant to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchKind {
    /// Inference-style unified PEs + static allocation
    /// (the paper's "LSTM-Inf", after ESE).
    LstmInf,
    /// Omni-PEs + static allocation.
    StaticArch,
    /// Omni-PEs + R2A dynamic allocation (η-LSTM hardware).
    DynArch,
}

impl ArchKind {
    /// Area overhead of the PE design: the unified PE replicates
    /// accumulation/activation logic per PE.
    pub fn pe_area_factor(self) -> f64 {
        match self {
            ArchKind::LstmInf => 1.3,
            ArchKind::StaticArch | ArchKind::DynArch => 1.0,
        }
    }

    /// Per-MAC energy overhead of the PE design (larger PEs switch more
    /// logic per operation).
    pub fn mac_energy_factor(self) -> f64 {
        match self {
            ArchKind::LstmInf => 1.8,
            ArchKind::StaticArch | ArchKind::DynArch => 1.0,
        }
    }

    /// Whether the R2A dynamic scheduler is available.
    pub fn dynamic(self) -> bool {
        matches!(self, ArchKind::DynArch)
    }

    /// Paper display name.
    pub fn label(self) -> &'static str {
        match self {
            ArchKind::LstmInf => "LSTM-Inf",
            ArchKind::StaticArch => "Static-Arch",
            ArchKind::DynArch => "Dyn-Arch",
        }
    }
}

/// Output of one simulated training iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelReport {
    /// Iteration latency, seconds.
    pub time_s: f64,
    /// Compute makespan, cycles.
    pub compute_cycles: f64,
    /// DMA transfer time, seconds.
    pub dma_time_s: f64,
    /// Exposed (non-overlapped) inter-board gradient all-reduce time,
    /// seconds (0 for a single board).
    pub allreduce_time_s: f64,
    /// PE utilization over the compute makespan, `[0, 1]`.
    pub utilization: f64,
    /// Total HBM traffic, bytes.
    pub traffic_bytes: u64,
    /// Achieved throughput over executed FLOPs, TFLOPS.
    pub tflops: f64,
    /// Energy by source.
    pub energy: EnergyBreakdown,
}

impl AccelReport {
    /// Total energy, joules.
    pub fn energy_j(&self) -> f64 {
        self.energy.total()
    }

    /// Energy efficiency, GFLOPS/W.
    pub fn gflops_per_watt(&self) -> f64 {
        let flops = self.tflops * 1e12 * self.time_s;
        flops / 1e9 / self.energy_j()
    }
}

/// The simulated accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EtaAccel {
    config: AccelConfig,
    kind: ArchKind,
    energy: EnergyConsts,
}

impl EtaAccel {
    /// Builds a machine of the given kind with default energy constants.
    pub fn new(config: AccelConfig, kind: ArchKind) -> Self {
        EtaAccel {
            config,
            kind,
            energy: EnergyConsts::fpga_defaults(),
        }
    }

    /// Overrides the energy constants.
    pub fn with_energy(mut self, energy: EnergyConsts) -> Self {
        self.energy = energy;
        self
    }

    /// The machine configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// The architecture variant.
    pub fn kind(&self) -> ArchKind {
        self.kind
    }

    /// Builds the forward-phase workload of one training iteration.
    pub fn forward_workload(shape: &LstmShape, eff: &OptEffects) -> Workload {
        let hb = (shape.layers * shape.seq_len * shape.batch * shape.hidden) as u64;
        // Element-wise work per hidden element per cell: ~9 baseline
        // (state/output updates and gate combination); MS1's reordered
        // BP-EW-P1 adds ~18 more (six products of 2–3 ops each).
        let ew_per_h = if eff.ms1 { 9 + 18 } else { 9 };
        Workload {
            matmul_macs: shape.forward_macs(),
            ew_ops: ew_per_h * hb,
            act_ops: 5 * hb,
        }
    }

    /// Builds the backward-phase workload of one training iteration.
    pub fn backward_workload(shape: &LstmShape, eff: &OptEffects) -> Workload {
        let kept = eff.kept_fraction();
        let rho = if eff.ms1 { eff.p1_density } else { 1.0 };
        let hb = (shape.layers * shape.seq_len * shape.batch * shape.hidden) as f64;
        // Two GEMMs of forward size (input grads + weight grads); the
        // decoder lets BP-MatMul skip rows whose gate gradient pruned.
        let macs = 2.0 * shape.forward_macs() as f64 * kept * rho;
        // BP-EW: P2 shrinks to the surviving P1 positions under MS1.
        let ew = if eff.ms1 { 6.0 * rho } else { 10.0 } * hb * kept;
        Workload {
            matmul_macs: macs as u64,
            ew_ops: ew as u64,
            act_ops: 0,
        }
    }

    /// HBM weight-streaming bytes of one iteration: weights are
    /// replicated per board and re-streamed per cell when a layer's
    /// parameters exceed half the scratchpad (double-buffering),
    /// otherwise fetched once per phase.
    pub fn weight_stream_bytes(&self, shape: &LstmShape, eff: &OptEffects) -> u64 {
        let kept = eff.kept_fraction();
        let rho = if eff.ms1 { eff.p1_density } else { 1.0 };
        let mut total = 0.0f64;
        for l in 0..shape.layers {
            let wu = shape.layer_weight_bytes(l) as f64;
            let per_phase = if shape.layer_weight_bytes(l) > self.config.scratchpad_bytes / 2 {
                shape.seq_len as f64 * wu
            } else {
                wu
            };
            // FW streams once; BP streams its two GEMM passes scaled by
            // skipping and the decoder's gathered fetches.
            total += per_phase * (1.0 + 2.0 * kept * rho);
        }
        (total * self.config.boards as f64) as u64
    }

    /// Simulates one training iteration.
    pub fn simulate(&self, shape: &LstmShape, eff: &OptEffects) -> AccelReport {
        let area = self.kind.pe_area_factor();
        let ops_per_cycle = self.config.ops_per_cycle() / area;

        let fw = Self::forward_workload(shape, eff);
        let bp = Self::backward_workload(shape, eff);

        let schedule = |w: &Workload| -> PhaseTiming {
            if self.kind.dynamic() {
                scheduler::simulate_dynamic(w, ops_per_cycle)
            } else {
                scheduler::simulate_static(w, ops_per_cycle, STATIC_EW_FRACTION)
            }
        };
        let fw_t = schedule(&fw);
        let bp_t = schedule(&bp);
        let mut compute = fw_t.then(&bp_t);

        // The per-channel activation modules bound activation throughput
        // (one evaluation per unit per cycle, two units per channel).
        let act_capacity = (self.config.total_channels() * 2) as f64 / area;
        let act_cycles = (fw.act_ops + bp.act_ops) as f64 / act_capacity;
        if act_cycles > compute.cycles {
            compute.cycles = act_cycles;
        }

        // HBM traffic: activations/intermediates from the shared traffic
        // model (the DMA compression module realizes the MS1 reduction)
        // plus weight streaming.
        let named = model::traffic(shape, eff);
        let traffic_bytes =
            named.activations + named.intermediates + self.weight_stream_bytes(shape, eff);
        let dma_time_s = traffic_bytes as f64 / self.config.total_hbm_bytes_per_sec();

        let compute_time_s = compute.cycles / self.config.freq_hz;

        // The batch is split across boards with replicated weights, so
        // partial weight gradients are ring-all-reduced over the host
        // links: 2·(boards−1)/boards of the parameter bytes per board.
        // Per-layer aggregation overlaps with the remaining BP work;
        // only ALLREDUCE_EXPOSED of it lands on the critical path.
        let allreduce_time_s = if self.config.boards > 1 {
            let per_board = 2.0 * shape.weight_bytes() as f64 * (self.config.boards as f64 - 1.0)
                / self.config.boards as f64;
            per_board / self.config.interconnect_bytes_per_sec * ALLREDUCE_EXPOSED
        } else {
            0.0
        };

        let time_s = compute_time_s.max(dma_time_s) + allreduce_time_s;

        let total_ops = fw.pe_ops() + bp.pe_ops();
        let events = EnergyEvents {
            macs: ((fw.matmul_macs + bp.matmul_macs) as f64 * self.kind.mac_energy_factor()) as u64,
            ew_ops: fw.ew_ops + bp.ew_ops,
            act_ops: fw.act_ops + bp.act_ops,
            dram_bytes: traffic_bytes,
            // Every PE operand and weight byte passes the scratchpad.
            sram_bytes: traffic_bytes + 8 * total_ops,
        };
        let energy = energy::energy_of(&self.energy, &events, time_s, self.config.boards);

        // Report throughput over the *baseline-equivalent* FLOPs so
        // speedups from skipped work show up as time savings, not
        // throughput inflation.
        let flops = 2.0 * total_ops as f64;
        AccelReport {
            time_s,
            compute_cycles: compute.cycles,
            dma_time_s,
            allreduce_time_s,
            utilization: (compute.busy_pe_cycles / (compute.cycles * ops_per_cycle).max(1e-9))
                .min(1.0),
            traffic_bytes,
            tflops: flops / time_s / 1e12,
            energy,
        }
    }
}

/// PE-occupancy histogram buckets: deciles of the busy fraction.
#[cfg(feature = "telemetry")]
pub const OCCUPANCY_BUCKETS: &[f64] = &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

#[cfg(feature = "telemetry")]
impl EtaAccel {
    /// [`EtaAccel::simulate`] plus metric recording.
    ///
    /// With a [`eta_telemetry::Telemetry`] handle the run records, all
    /// labelled with `arch = `[`ArchKind::label`]:
    ///
    /// - `accel_pe_busy_fraction{phase}` — per-phase (fw/bp) PE
    ///   occupancy histogram over [`OCCUPANCY_BUCKETS`];
    /// - `accel_utilization`, `accel_iteration_seconds`,
    ///   `accel_dma_seconds`, `accel_tflops`, `accel_energy_joules` —
    ///   gauges of the report fields;
    /// - `accel_traffic_bytes_total` — counter of HBM traffic.
    pub fn simulate_instrumented(
        &self,
        shape: &LstmShape,
        eff: &OptEffects,
        telemetry: Option<&eta_telemetry::Telemetry>,
    ) -> AccelReport {
        let sim_span = telemetry.map(|t| t.span("accel_simulate"));
        let report = self.simulate(shape, eff);
        drop(sim_span);
        let Some(t) = telemetry else {
            return report;
        };
        let arch = self.kind.label();
        // Re-derive the per-phase timings (cheap closed forms) so fw and
        // bp occupancy show up separately rather than only the combined
        // report utilization.
        let ops_per_cycle = self.config.ops_per_cycle() / self.kind.pe_area_factor();
        let fw = Self::forward_workload(shape, eff);
        let bp = Self::backward_workload(shape, eff);
        for (phase, w) in [("fw", &fw), ("bp", &bp)] {
            let _phase_span = t.span(if phase == "fw" {
                "accel_fw_timing"
            } else {
                "accel_bp_timing"
            });
            let timing = if self.kind.dynamic() {
                scheduler::simulate_dynamic(w, ops_per_cycle)
            } else {
                scheduler::simulate_static(w, ops_per_cycle, STATIC_EW_FRACTION)
            };
            t.observe_in(
                eta_telemetry::keys::ACCEL_PE_BUSY_FRACTION,
                eta_telemetry::labels!(phase = phase, arch = arch),
                OCCUPANCY_BUCKETS,
                timing.utilization(),
            );
        }
        use eta_telemetry::keys;
        let labels = || eta_telemetry::labels!(arch = arch);
        t.gauge_with(keys::ACCEL_UTILIZATION, labels(), report.utilization);
        t.gauge_with(keys::ACCEL_ITERATION_SECONDS, labels(), report.time_s);
        t.gauge_with(keys::ACCEL_DMA_SECONDS, labels(), report.dma_time_s);
        t.gauge_with(keys::ACCEL_TFLOPS, labels(), report.tflops);
        t.gauge_with(keys::ACCEL_ENERGY_JOULES, labels(), report.energy_j());
        t.incr_with(
            keys::ACCEL_TRAFFIC_BYTES_TOTAL,
            labels(),
            report.traffic_bytes,
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ptb_like() -> LstmShape {
        LstmShape::new(1536, 1536, 4, 35, 128)
    }

    fn machine(kind: ArchKind) -> EtaAccel {
        EtaAccel::new(AccelConfig::paper_4board(), kind)
    }

    #[test]
    fn paper_machine_peaks_near_ten_tflops() {
        let c = AccelConfig::paper_4board();
        let peak = c.peak_flops() / 1e12;
        assert!(
            (9.0..12.0).contains(&peak),
            "4-board peak {peak} TFLOPS out of positioning band"
        );
    }

    #[test]
    fn dyn_arch_beats_static_beats_lstm_inf() {
        let base = OptEffects::baseline();
        let s = ptb_like();
        let t_dyn = machine(ArchKind::DynArch).simulate(&s, &base).time_s;
        let t_static = machine(ArchKind::StaticArch).simulate(&s, &base).time_s;
        let t_inf = machine(ArchKind::LstmInf).simulate(&s, &base).time_s;
        assert!(t_dyn < t_static, "dyn {t_dyn} vs static {t_static}");
        assert!(t_static < t_inf, "static {t_static} vs inf {t_inf}");
        // Static's penalty is the idle EW partition: ≈1/(1−EW fraction).
        let ratio = t_static / t_dyn;
        let expected = 1.0 / (1.0 - crate::scheduler::STATIC_EW_FRACTION);
        assert!(
            (ratio - expected).abs() < 0.15,
            "static/dyn ratio {ratio} should reflect the idle partition (≈{expected})"
        );
    }

    #[test]
    fn dynamic_utilization_exceeds_static() {
        let base = OptEffects::baseline();
        let s = ptb_like();
        let u_dyn = machine(ArchKind::DynArch).simulate(&s, &base).utilization;
        let u_static = machine(ArchKind::StaticArch)
            .simulate(&s, &base)
            .utilization;
        assert!(u_dyn > 0.9, "R2A should keep PEs busy: {u_dyn}");
        assert!(u_static < u_dyn);
    }

    #[test]
    fn software_optimizations_speed_up_the_accelerator() {
        let s = ptb_like();
        let m = machine(ArchKind::DynArch);
        let t_base = m.simulate(&s, &OptEffects::baseline()).time_s;
        let t_full = m.simulate(&s, &OptEffects::combined(0.35, 0.49)).time_s;
        let speedup = t_base / t_full;
        // MS1's sparsity is hardware-exploitable here (unlike the GPU):
        // BP MatMul shrinks by ρ and skipped cells disappear.
        assert!(
            (1.5..4.0).contains(&speedup),
            "η-LSTM software+hardware speedup {speedup} over Dyn-Arch alone"
        );
    }

    #[test]
    fn energy_ordering_matches_paper() {
        let base = OptEffects::baseline();
        let s = ptb_like();
        let e_dyn = machine(ArchKind::DynArch).simulate(&s, &base).energy_j();
        let e_static = machine(ArchKind::StaticArch).simulate(&s, &base).energy_j();
        let e_inf = machine(ArchKind::LstmInf).simulate(&s, &base).energy_j();
        assert!(e_dyn < e_static, "dyn {e_dyn} vs static {e_static}");
        assert!(e_static < e_inf, "static {e_static} vs inf {e_inf}");
    }

    #[test]
    fn dma_overlaps_compute_for_large_models() {
        let s = ptb_like();
        let r = machine(ArchKind::DynArch).simulate(&s, &OptEffects::baseline());
        assert!(
            r.dma_time_s < r.time_s,
            "compute-bound workload: dma {} vs total {}",
            r.dma_time_s,
            r.time_s
        );
        assert!(r.traffic_bytes > 0);
    }

    #[test]
    fn ms1_reduces_hbm_traffic() {
        let s = ptb_like();
        let m = machine(ArchKind::DynArch);
        let base = m.simulate(&s, &OptEffects::baseline()).traffic_bytes;
        let ms1 = m.simulate(&s, &OptEffects::ms1(0.35)).traffic_bytes;
        assert!(
            ms1 < base,
            "DMA compression must cut traffic: {ms1} vs {base}"
        );
    }

    #[test]
    fn small_layers_cache_in_scratchpad() {
        // H=256 layers are ~2 MB — well under half the 32 MB scratchpad,
        // so weights stream once per phase instead of per cell.
        let small = LstmShape::new(256, 256, 2, 50, 32);
        let m = machine(ArchKind::DynArch);
        let bytes = m.weight_stream_bytes(&small, &OptEffects::baseline());
        let per_board = bytes / 4;
        // FW (1×) + two BP passes (2×) = exactly three fetches per phase.
        assert!(
            per_board <= 3 * small.weight_bytes(),
            "small weights should not re-stream per cell"
        );
        // And a large layer must re-stream per cell.
        let big = LstmShape::new(2048, 2048, 1, 50, 32);
        let big_bytes = m.weight_stream_bytes(&big, &OptEffects::baseline()) / 4;
        assert!(big_bytes > 10 * big.weight_bytes());
    }

    #[test]
    fn multi_board_pays_for_gradient_allreduce() {
        let s = ptb_like();
        let multi = machine(ArchKind::DynArch).simulate(&s, &OptEffects::baseline());
        assert!(multi.allreduce_time_s > 0.0);
        assert!(multi.allreduce_time_s < multi.time_s * 0.5);
        let single_cfg = AccelConfig {
            boards: 1,
            ..AccelConfig::paper_4board()
        };
        let single =
            EtaAccel::new(single_cfg, ArchKind::DynArch).simulate(&s, &OptEffects::baseline());
        assert_eq!(single.allreduce_time_s, 0.0);
    }

    #[test]
    fn report_throughput_is_sane() {
        let r = machine(ArchKind::DynArch).simulate(&ptb_like(), &OptEffects::baseline());
        assert!(r.tflops > 1.0 && r.tflops < 12.0, "tflops {}", r.tflops);
        assert!(
            r.gflops_per_watt() > 5.0,
            "gflops/W {}",
            r.gflops_per_watt()
        );
    }
}
