//! Executes a complete LSTM cell on the simulated channel datapath:
//! MatVec on the Omni-PEs, gate nonlinearities through the channel's
//! LUT activation module, the state/output element-wise chain, and —
//! under the η-LSTM flow — the reordered BP-EW-P1 products pushed
//! through the DMA compression module.
//!
//! This is the functional-fidelity anchor of the simulator: the
//! workspace integration tests check that this datapath produces the
//! same numbers as the software training framework's
//! `eta_lstm_core::cell::forward` (within LUT quantization tolerance),
//! so the performance/energy numbers the simulator reports correspond
//! to a datapath that demonstrably computes LSTM training correctly.

use crate::channel::{Channel, ChannelStats};
use crate::dma::{DmaModule, WritePacket};
use eta_tensor::Matrix;

/// Weights of one cell as the channel engine consumes them.
#[derive(Debug, Clone)]
pub struct CellWeights {
    /// Input projection `[4H, in]`, gate order `[i|f|c|o]`.
    pub w: Matrix,
    /// Recurrent projection `[4H, H]`.
    pub u: Matrix,
    /// Bias, length `4H`.
    pub b: Vec<f32>,
}

impl CellWeights {
    /// Hidden width `H`.
    pub fn hidden(&self) -> usize {
        self.u.cols()
    }
}

/// Outputs of one channel-executed cell for one batch sample.
#[derive(Debug, Clone)]
pub struct CellOutputs {
    /// Input gate.
    pub i: Vec<f32>,
    /// Forget gate.
    pub f: Vec<f32>,
    /// Cell gate.
    pub c: Vec<f32>,
    /// Output gate.
    pub o: Vec<f32>,
    /// Cell state.
    pub s: Vec<f32>,
    /// `tanh(s)`.
    pub tanh_s: Vec<f32>,
    /// Context output.
    pub h: Vec<f32>,
}

/// Result of executing a cell, with timing and (optionally) the
/// compressed P1 bytes the DMA emitted.
#[derive(Debug, Clone)]
pub struct CellExecution {
    /// Functional outputs.
    pub outputs: CellOutputs,
    /// Accumulated channel statistics (sequential composition of the
    /// cell's kernels).
    pub stats: ChannelStats,
    /// Compressed BP-EW-P1 bytes written by the DMA (0 without MS1).
    pub p1_compressed_bytes: u64,
}

/// A channel plus DMA executing single-sample LSTM cells.
#[derive(Debug, Clone)]
pub struct ChannelCellEngine {
    channel: Channel,
    dma: DmaModule,
    ms1_threshold: Option<f32>,
}

impl ChannelCellEngine {
    /// Engine for the baseline flow (dense intermediates, no DMA
    /// compression).
    pub fn baseline() -> Self {
        ChannelCellEngine {
            channel: Channel::new(),
            dma: DmaModule::new(0.0),
            ms1_threshold: None,
        }
    }

    /// Engine for the η-LSTM flow: BP-EW-P1 computed in the forward
    /// pass and compressed at `threshold`.
    pub fn with_ms1(threshold: f32) -> Self {
        ChannelCellEngine {
            channel: Channel::new(),
            dma: DmaModule::new(threshold),
            ms1_threshold: Some(threshold),
        }
    }

    /// DMA compression statistics accumulated so far.
    pub fn dma_stats(&self) -> &eta_tensor::CompressionStats {
        self.dma.stats()
    }

    /// Executes one cell for one sample: `x` is the input vector,
    /// `h_prev`/`s_prev` the previous context and state.
    ///
    /// # Panics
    ///
    /// Panics if operand lengths do not match the weight shapes.
    pub fn execute(
        &mut self,
        weights: &CellWeights,
        x: &[f32],
        h_prev: &[f32],
        s_prev: &[f32],
    ) -> CellExecution {
        let h = weights.hidden();
        assert_eq!(x.len(), weights.w.cols(), "input width mismatch");
        assert_eq!(h_prev.len(), h, "context width mismatch");
        assert_eq!(s_prev.len(), h, "state width mismatch");

        let mut stats = ChannelStats::default();

        // FW-MatMul: preact = W·x + U·h_prev + b.
        let (wx, s1) = self.channel.matvec(&weights.w, x);
        stats.merge(&s1);
        let (uh, s2) = self.channel.matvec(&weights.u, h_prev);
        stats.merge(&s2);
        let (wxuh, s3) = self.channel.ew_add(&wx, &uh);
        stats.merge(&s3);
        let (preact, s4) = self.channel.ew_add(&wxuh, &weights.b);
        stats.merge(&s4);
        debug_assert_eq!(preact.len(), 4 * h);

        // Gate activations through the channel's LUT units.
        let (i, si) = self.channel.sigmoid(&preact[..h]);
        let (f, sf) = self.channel.sigmoid(&preact[h..2 * h]);
        let (c, sc) = self.channel.tanh(&preact[2 * h..3 * h]);
        let (o, so) = self.channel.sigmoid(&preact[3 * h..4 * h]);
        for s in [&si, &sf, &sc, &so] {
            stats.merge(s);
        }

        // FW-EW: s = f ⊙ s_prev + i ⊙ c ; h = o ⊙ tanh(s).
        let (fs, s5) = self.channel.ew_mul(&f, s_prev);
        stats.merge(&s5);
        let (ic, s6) = self.channel.ew_mul(&i, &c);
        stats.merge(&s6);
        let (s, s7) = self.channel.ew_add(&fs, &ic);
        stats.merge(&s7);
        let (tanh_s, s8) = self.channel.tanh(&s);
        stats.merge(&s8);
        let (h_out, s9) = self.channel.ew_mul(&o, &tanh_s);
        stats.merge(&s9);

        // MS1 execution reordering: BP-EW-P1 on the channel, compressed
        // by the DMA on its way out.
        let mut p1_compressed_bytes = 0u64;
        if let Some(_threshold) = self.ms1_threshold {
            let one_minus = |v: &[f32]| -> Vec<f32> { v.iter().map(|&a| 1.0 - a).collect() };
            let streams: Vec<Vec<f32>> = {
                let (i1, t1) = self.channel.ew_mul(&i, &one_minus(&i));
                stats.merge(&t1);
                let (p_i, t2) = self.channel.ew_mul(&c, &i1);
                stats.merge(&t2);
                let (f1, t3) = self.channel.ew_mul(&f, &one_minus(&f));
                stats.merge(&t3);
                let (p_f, t4) = self.channel.ew_mul(s_prev, &f1);
                stats.merge(&t4);
                let c2: Vec<f32> = c.iter().map(|&v| 1.0 - v * v).collect();
                let (p_c, t5) = self.channel.ew_mul(&i, &c2);
                stats.merge(&t5);
                let (o1, t6) = self.channel.ew_mul(&o, &one_minus(&o));
                stats.merge(&t6);
                let (p_o, t7) = self.channel.ew_mul(&tanh_s, &o1);
                stats.merge(&t7);
                let th2: Vec<f32> = tanh_s.iter().map(|&v| 1.0 - v * v).collect();
                let (p_h, t8) = self.channel.ew_mul(&o, &th2);
                stats.merge(&t8);
                vec![p_i, p_f, p_c, p_o, p_h, f.clone()]
            };
            for stream in &streams {
                match self.dma.write(stream, true) {
                    WritePacket::Compressed { bytes, .. } => p1_compressed_bytes += bytes,
                    WritePacket::Dense { bytes } => p1_compressed_bytes += bytes,
                }
            }
        }

        CellExecution {
            outputs: CellOutputs {
                i,
                f,
                c,
                o,
                s,
                tanh_s,
                h: h_out,
            },
            stats,
            p1_compressed_bytes,
        }
    }

    /// Executes a whole sequence for one sample, returning the per-step
    /// outputs and the total stats.
    pub fn execute_sequence(
        &mut self,
        weights: &CellWeights,
        xs: &[Vec<f32>],
    ) -> (Vec<CellOutputs>, ChannelStats, u64) {
        let h = weights.hidden();
        let mut h_prev = vec![0.0f32; h];
        let mut s_prev = vec![0.0f32; h];
        let mut outputs = Vec::with_capacity(xs.len());
        let mut stats = ChannelStats::default();
        let mut bytes = 0u64;
        for x in xs {
            let exec = self.execute(weights, x, &h_prev, &s_prev);
            stats.merge(&exec.stats);
            bytes += exec.p1_compressed_bytes;
            h_prev = exec.outputs.h.clone();
            s_prev = exec.outputs.s.clone();
            outputs.push(exec.outputs);
        }
        (outputs, stats, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_tensor::init;

    fn weights(input: usize, hidden: usize, seed: u64) -> CellWeights {
        CellWeights {
            w: init::xavier_uniform(4 * hidden, input, seed),
            u: init::xavier_uniform(4 * hidden, hidden, seed + 1),
            b: vec![0.0; 4 * hidden],
        }
    }

    #[test]
    fn gates_respect_activation_ranges() {
        let w = weights(8, 8, 3);
        let mut engine = ChannelCellEngine::baseline();
        let x: Vec<f32> = (0..8).map(|i| (i as f32 - 4.0) / 2.0).collect();
        let exec = engine.execute(&w, &x, &[0.1; 8], &[-0.2; 8]);
        let out = &exec.outputs;
        assert!(out.i.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(out.f.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(out.o.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(out.c.iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn state_identity_holds_on_the_datapath() {
        let w = weights(6, 4, 7);
        let mut engine = ChannelCellEngine::baseline();
        let x = vec![0.5f32, -0.5, 0.25, 0.0, 1.0, -1.0];
        let s_prev = vec![0.3f32, -0.3, 0.0, 0.7];
        let exec = engine.execute(&w, &x, &[0.0; 4], &s_prev);
        let out = &exec.outputs;
        for (k, &s_p) in s_prev.iter().enumerate() {
            let expect = out.f[k] * s_p + out.i[k] * out.c[k];
            assert!((out.s[k] - expect).abs() < 1e-5);
            assert!((out.h[k] - out.o[k] * out.tanh_s[k]).abs() < 2e-3);
        }
    }

    #[test]
    fn ms1_engine_emits_compressed_p1() {
        let w = weights(8, 8, 11);
        let mut engine = ChannelCellEngine::with_ms1(0.1);
        let x: Vec<f32> = (0..8).map(|i| ((i * 7 % 5) as f32 - 2.0) / 2.0).collect();
        let exec = engine.execute(&w, &x, &[0.1; 8], &[0.2; 8]);
        assert!(exec.p1_compressed_bytes > 0);
        // Six streams of 8 dense f32 would be 192 bytes; pruning at 0.1
        // must beat that.
        assert!(exec.p1_compressed_bytes < 192);
        assert!(engine.dma_stats().total == 48);
    }

    #[test]
    fn baseline_engine_emits_no_p1() {
        let w = weights(4, 4, 13);
        let mut engine = ChannelCellEngine::baseline();
        let exec = engine.execute(&w, &[0.1, 0.2, 0.3, 0.4], &[0.0; 4], &[0.0; 4]);
        assert_eq!(exec.p1_compressed_bytes, 0);
    }

    #[test]
    fn sequence_execution_chains_state() {
        let w = weights(4, 4, 17);
        let mut engine = ChannelCellEngine::baseline();
        let xs: Vec<Vec<f32>> = (0..5)
            .map(|t| (0..4).map(|i| ((t + i) as f32 - 3.0) / 3.0).collect())
            .collect();
        let (outs, stats, _) = engine.execute_sequence(&w, &xs);
        assert_eq!(outs.len(), 5);
        assert!(stats.cycles > 0);
        // The state must evolve (not stay at the first step's value).
        assert_ne!(outs[0].s, outs[4].s);
    }

    #[test]
    fn stats_accumulate_mac_counts() {
        let w = weights(6, 4, 19);
        let mut engine = ChannelCellEngine::baseline();
        let exec = engine.execute(&w, &[0.0; 6], &[0.0; 4], &[0.0; 4]);
        // Two matvecs: 16x6 and 16x4 → 96 + 64 = 160 mults, plus EW.
        assert!(exec.stats.mult_ops >= 160);
        assert!(exec.stats.act_ops >= 4 * 4 + 4);
    }
}
