//! Energy model of the FPGA-hosted accelerator.
//!
//! Per-event dynamic energies are set for a 16 nm UltraScale+ fabric at
//! 500 MHz (DSP-based FP32 arithmetic costs several pJ per operation on
//! FPGA — far above ASIC but far below a GPU's full-instruction
//! overhead); HBM access energy matches the GPU model's device-level
//! cost without the GPU's deep on-chip hierarchy. Static power reflects
//! the measured idle draw of a VCU128 board.

use serde::{Deserialize, Serialize};

/// Per-event energy constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyConsts {
    /// Joules per multiply-accumulate (multiplier + adder event).
    pub e_mac: f64,
    /// Joules per element-wise operation (single multiplier or adder
    /// event).
    pub e_ew: f64,
    /// Joules per activation LUT evaluation.
    pub e_act: f64,
    /// Joules per byte moved to/from HBM (device + PHY).
    pub e_dram_byte: f64,
    /// Joules per byte moved through the on-board scratchpad.
    pub e_sram_byte: f64,
    /// Static watts per FPGA board.
    pub static_w_per_board: f64,
}

impl EnergyConsts {
    /// VCU128-class defaults (see module docs).
    pub fn fpga_defaults() -> Self {
        EnergyConsts {
            e_mac: 10.0e-12,
            e_ew: 5.0e-12,
            e_act: 3.0e-12,
            e_dram_byte: 120.0e-12,
            e_sram_byte: 1.0e-12,
            static_w_per_board: 32.0,
        }
    }
}

/// Energy of one simulated run, by source.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Arithmetic (MAC + EW + activation) energy, joules.
    pub compute_j: f64,
    /// DRAM (HBM) access energy, joules.
    pub dram_j: f64,
    /// Scratchpad access energy, joules.
    pub sram_j: f64,
    /// Static/leakage energy over the run, joules.
    pub static_j: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.compute_j + self.dram_j + self.sram_j + self.static_j
    }
}

/// Event counts feeding the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EnergyEvents {
    /// Multiply-accumulate operations.
    pub macs: u64,
    /// Element-wise operations.
    pub ew_ops: u64,
    /// Activation evaluations.
    pub act_ops: u64,
    /// HBM bytes moved.
    pub dram_bytes: u64,
    /// Scratchpad bytes moved.
    pub sram_bytes: u64,
}

/// Evaluates the energy of a run of `time_s` seconds on `boards` boards.
pub fn energy_of(
    consts: &EnergyConsts,
    events: &EnergyEvents,
    time_s: f64,
    boards: usize,
) -> EnergyBreakdown {
    EnergyBreakdown {
        compute_j: consts.e_mac * events.macs as f64
            + consts.e_ew * events.ew_ops as f64
            + consts.e_act * events.act_ops as f64,
        dram_j: consts.e_dram_byte * events.dram_bytes as f64,
        sram_j: consts.e_sram_byte * events.sram_bytes as f64,
        static_j: consts.static_w_per_board * boards as f64 * time_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_sums_components() {
        let e = EnergyBreakdown {
            compute_j: 1.0,
            dram_j: 2.0,
            sram_j: 0.5,
            static_j: 3.0,
        };
        assert_eq!(e.total(), 6.5);
    }

    #[test]
    fn energy_scales_linearly_with_events() {
        let c = EnergyConsts::fpga_defaults();
        let one = EnergyEvents {
            macs: 1_000_000,
            ew_ops: 1_000,
            act_ops: 100,
            dram_bytes: 1_000_000,
            sram_bytes: 10_000,
        };
        let two = EnergyEvents {
            macs: 2 * one.macs,
            ew_ops: 2 * one.ew_ops,
            act_ops: 2 * one.act_ops,
            dram_bytes: 2 * one.dram_bytes,
            sram_bytes: 2 * one.sram_bytes,
        };
        let e1 = energy_of(&c, &one, 1.0, 4);
        let e2 = energy_of(&c, &two, 1.0, 4);
        assert!((e2.compute_j - 2.0 * e1.compute_j).abs() < 1e-15);
        assert!((e2.dram_j - 2.0 * e1.dram_j).abs() < 1e-15);
        assert_eq!(e1.static_j, e2.static_j, "static depends only on time");
    }

    #[test]
    fn fpga_board_at_full_tilt_draws_plausible_power() {
        // One board: 40 ch × 32 PEs × 2 lanes × 500 MHz = 1.28 TMAC/s.
        let c = EnergyConsts::fpga_defaults();
        let macs_per_s = 40.0 * 32.0 * 2.0 * 500e6;
        let dynamic_w = macs_per_s * c.e_mac;
        let total_w = dynamic_w + c.static_w_per_board;
        assert!(
            (20.0..120.0).contains(&total_w),
            "board power {total_w} W implausible for a VCU128"
        );
    }
}
