//! Event-level execution timeline of dependent cell kernels — the
//! detailed view behind the paper's Fig. 10: under a static allocation
//! the EW group idles while MatMul runs (and vice versa), because the
//! cell's kernels are data-dependent and the unrolled cells are
//! sequential; the R2A swing design keeps every PE on whichever kernel
//! is ready.

use serde::{Deserialize, Serialize};

/// Resource allocation policy for the trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Alloc {
    /// Fixed MatMul/EW split; the off-duty group idles.
    Static {
        /// Fraction of PEs in the EW group.
        ew_fraction: f64,
    },
    /// R2A dynamic allocation with swing PEs.
    Dynamic,
}

/// Operation counts of one cell's two dependent kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellKernels {
    /// FW/BP MatMul MACs.
    pub mm_ops: u64,
    /// Element-wise operations.
    pub ew_ops: u64,
}

/// Which kernel a segment ran.
///
/// Formats as `MatMul` / `EW` (honoring padding) and compares equal to
/// those strings, so display code and tests can keep treating it as a
/// label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SegmentKind {
    /// The MatMul kernel group.
    MatMul,
    /// The element-wise kernel group.
    Ew,
}

impl SegmentKind {
    /// The paper's label for this kernel group.
    pub fn as_str(self) -> &'static str {
        match self {
            SegmentKind::MatMul => "MatMul",
            SegmentKind::Ew => "EW",
        }
    }
}

impl std::fmt::Display for SegmentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.as_str())
    }
}

impl PartialEq<&str> for SegmentKind {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<SegmentKind> for &str {
    fn eq(&self, other: &SegmentKind) -> bool {
        other == self
    }
}

/// One contiguous interval of the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start cycle.
    pub start: f64,
    /// End cycle.
    pub end: f64,
    /// Which kernel ran.
    pub kind: SegmentKind,
    /// Fraction of PEs busy during the interval.
    pub busy_fraction: f64,
}

impl Segment {
    /// Interval length in cycles.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A full trace over a cell sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Chronological segments.
    pub segments: Vec<Segment>,
    /// Total cycles.
    pub makespan: f64,
    /// Overall PE utilization in `[0, 1]`.
    pub utilization: f64,
}

/// Relative swing-switch overhead per kernel under dynamic allocation
/// (matches [`crate::scheduler::SWING_OVERHEAD`]).
const DYN_OVERHEAD: f64 = crate::scheduler::SWING_OVERHEAD;

/// Traces `cells` executing in sequence (context dependency) on a
/// machine with `ops_per_cycle` total PE throughput.
///
/// # Panics
///
/// Panics if `ops_per_cycle <= 0` or a static `ew_fraction` is outside
/// `(0, 1)`.
pub fn trace(cells: &[CellKernels], ops_per_cycle: f64, alloc: Alloc) -> Timeline {
    assert!(ops_per_cycle > 0.0, "machine must have PE throughput");
    if let Alloc::Static { ew_fraction } = alloc {
        assert!(
            ew_fraction > 0.0 && ew_fraction < 1.0,
            "static split must leave both groups capacity"
        );
    }
    let mut segments = Vec::with_capacity(cells.len() * 2);
    let mut now = 0.0f64;
    let mut busy_ops = 0.0f64;
    for cell in cells {
        match alloc {
            Alloc::Static { ew_fraction } => {
                let mm_cap = ops_per_cycle * (1.0 - ew_fraction);
                let ew_cap = ops_per_cycle * ew_fraction;
                let mm_dur = cell.mm_ops as f64 / mm_cap;
                segments.push(Segment {
                    start: now,
                    end: now + mm_dur,
                    kind: SegmentKind::MatMul,
                    busy_fraction: 1.0 - ew_fraction,
                });
                now += mm_dur;
                if cell.ew_ops > 0 {
                    let ew_dur = cell.ew_ops as f64 / ew_cap;
                    segments.push(Segment {
                        start: now,
                        end: now + ew_dur,
                        kind: SegmentKind::Ew,
                        busy_fraction: ew_fraction,
                    });
                    now += ew_dur;
                }
            }
            Alloc::Dynamic => {
                let mm_dur = cell.mm_ops as f64 / ops_per_cycle * (1.0 + DYN_OVERHEAD);
                segments.push(Segment {
                    start: now,
                    end: now + mm_dur,
                    kind: SegmentKind::MatMul,
                    busy_fraction: 1.0 / (1.0 + DYN_OVERHEAD),
                });
                now += mm_dur;
                if cell.ew_ops > 0 {
                    let ew_dur = cell.ew_ops as f64 / ops_per_cycle * (1.0 + DYN_OVERHEAD);
                    segments.push(Segment {
                        start: now,
                        end: now + ew_dur,
                        kind: SegmentKind::Ew,
                        busy_fraction: 1.0 / (1.0 + DYN_OVERHEAD),
                    });
                    now += ew_dur;
                }
            }
        }
        busy_ops += (cell.mm_ops + cell.ew_ops) as f64;
    }
    Timeline {
        segments,
        makespan: now,
        utilization: if now > 0.0 {
            (busy_ops / (now * ops_per_cycle)).min(1.0)
        } else {
            0.0
        },
    }
}

/// [`trace`] plus metric recording.
///
/// Every segment's busy fraction is observed into the
/// `accel_pe_busy_fraction{kind}` histogram (buckets
/// [`crate::arch::OCCUPANCY_BUCKETS`]), and under [`Alloc::Dynamic`]
/// each kernel-kind boundary — the moment the swing PEs hand off between
/// the MatMul and EW groups — increments `accel_swing_handoffs_total`.
#[cfg(feature = "telemetry")]
pub fn trace_instrumented(
    cells: &[CellKernels],
    ops_per_cycle: f64,
    alloc: Alloc,
    telemetry: Option<&eta_telemetry::Telemetry>,
) -> Timeline {
    let tl = trace(cells, ops_per_cycle, alloc);
    let Some(t) = telemetry else {
        return tl;
    };
    for seg in &tl.segments {
        t.observe_in(
            eta_telemetry::keys::ACCEL_PE_BUSY_FRACTION,
            eta_telemetry::labels!(kind = seg.kind),
            crate::arch::OCCUPANCY_BUCKETS,
            seg.busy_fraction,
        );
    }
    if alloc == Alloc::Dynamic {
        let handoffs = tl
            .segments
            .windows(2)
            .filter(|w| matches!(w, [a, b] if a.kind != b.kind))
            .count() as u64;
        t.incr(eta_telemetry::keys::ACCEL_SWING_HANDOFFS_TOTAL, handoffs);
    }
    t.gauge(
        eta_telemetry::keys::ACCEL_TIMELINE_UTILIZATION,
        tl.utilization,
    );
    tl
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(n: usize) -> Vec<CellKernels> {
        vec![
            CellKernels {
                mm_ops: 96_000,
                ew_ops: 4_000,
            };
            n
        ]
    }

    #[test]
    fn segments_are_contiguous_and_ordered() {
        let t = trace(&cells(4), 1000.0, Alloc::Dynamic);
        assert_eq!(t.segments.len(), 8);
        for w in t.segments.windows(2) {
            assert!((w[0].end - w[1].start).abs() < 1e-9);
        }
        assert!((t.segments.last().unwrap().end - t.makespan).abs() < 1e-9);
    }

    #[test]
    fn dynamic_utilization_near_one() {
        let t = trace(&cells(10), 1000.0, Alloc::Dynamic);
        assert!(
            t.utilization > 0.95,
            "dynamic utilization {}",
            t.utilization
        );
    }

    #[test]
    fn static_idles_the_off_duty_group() {
        let t = trace(&cells(10), 1000.0, Alloc::Static { ew_fraction: 0.4 });
        // MatMul segments leave 40 % of the PEs idle.
        let mm = t.segments.iter().find(|s| s.kind == "MatMul").unwrap();
        assert!((mm.busy_fraction - 0.6).abs() < 1e-9);
        // MatMul dominates the ops, so utilization ≈ 0.6.
        assert!(
            (0.55..0.70).contains(&t.utilization),
            "static utilization {}",
            t.utilization
        );
    }

    #[test]
    fn timeline_round_trips_through_serde() {
        let t = trace(&cells(3), 1000.0, Alloc::Static { ew_fraction: 0.4 });
        let text = serde_json::to_string(&t).expect("serialize timeline");
        let back: Timeline = serde_json::from_str(&text).expect("deserialize timeline");
        assert_eq!(back, t);
        assert_eq!(back.segments[0].kind, SegmentKind::MatMul);
        assert_eq!(back.segments[1].kind, "EW");
    }

    #[test]
    fn dynamic_beats_static_makespan() {
        let d = trace(&cells(10), 1000.0, Alloc::Dynamic);
        let s = trace(&cells(10), 1000.0, Alloc::Static { ew_fraction: 0.4 });
        assert!(
            s.makespan > d.makespan * 1.3,
            "static {} vs dynamic {}",
            s.makespan,
            d.makespan
        );
    }

    #[test]
    fn timeline_agrees_with_aggregate_scheduler() {
        // The aggregate scheduler's static makespan (max of the two
        // groups) lower-bounds the dependency-serialized timeline, and
        // the dynamic paths must agree exactly.
        use crate::scheduler::{simulate_dynamic, Workload};
        let cs = cells(6);
        let total = Workload {
            matmul_macs: cs.iter().map(|c| c.mm_ops).sum(),
            ew_ops: cs.iter().map(|c| c.ew_ops).sum(),
            act_ops: 0,
        };
        let d_tl = trace(&cs, 1000.0, Alloc::Dynamic);
        let d_agg = simulate_dynamic(&total, 1000.0);
        assert!((d_tl.makespan - d_agg.cycles).abs() / d_agg.cycles < 1e-9);
    }

    #[test]
    fn empty_trace_is_zeroed() {
        let t = trace(&[], 100.0, Alloc::Dynamic);
        assert_eq!(t.makespan, 0.0);
        assert_eq!(t.utilization, 0.0);
        assert!(t.segments.is_empty());
    }

    #[test]
    #[should_panic(expected = "both groups")]
    fn degenerate_static_split_rejected() {
        let _ = trace(&cells(1), 100.0, Alloc::Static { ew_fraction: 1.0 });
    }
}
