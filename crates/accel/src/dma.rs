//! The customized DMA module (paper Sec. V-D, Fig. 14): a compression
//! module and WT data/index queues on the write path, a decoder module
//! and RD data/index queues on the read path.
//!
//! Dense data flows straight through the WT/RD data queues; sparse-
//! eligible data (the MS1 P1 streams) is threshold-pruned into value +
//! index queues on write, and on read the decoder uses the sparse
//! indices to fetch only the rows of dense co-operands that matter,
//! which is how the accelerator converts MS1's value sparsity into
//! skipped DRAM requests and skipped computation.

use eta_tensor::{CompressionStats, SparseVec};
use std::collections::VecDeque;

/// A bounded FIFO with occupancy statistics, modeling the DMA's WT/RD
/// queues.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    buf: VecDeque<T>,
    capacity: usize,
    high_water: usize,
    total_pushed: u64,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Fifo {
            buf: VecDeque::new(),
            capacity,
            high_water: 0,
            total_pushed: 0,
        }
    }

    /// Pushes an entry; returns `false` (back-pressure) when full.
    pub fn push(&mut self, item: T) -> bool {
        if self.buf.len() == self.capacity {
            return false;
        }
        self.buf.push_back(item);
        self.high_water = self.high_water.max(self.buf.len());
        self.total_pushed += 1;
        true
    }

    /// Pops the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        self.buf.pop_front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Highest occupancy ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total entries ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }
}

/// What the write path emitted for one stream.
#[derive(Debug, Clone, PartialEq)]
pub enum WritePacket {
    /// Dense pass-through: original bytes.
    Dense {
        /// Bytes written.
        bytes: u64,
    },
    /// Compressed: pruned values plus indices.
    Compressed {
        /// The surviving values and their positions.
        sparse: SparseVec,
        /// Bytes written (best of pair/bitmap encodings).
        bytes: u64,
    },
}

impl WritePacket {
    /// Bytes this packet moves to memory.
    pub fn bytes(&self) -> u64 {
        match self {
            WritePacket::Dense { bytes } | WritePacket::Compressed { bytes, .. } => *bytes,
        }
    }
}

/// The DMA engine with its compression/decoder modules.
#[derive(Debug, Clone)]
pub struct DmaModule {
    threshold: f32,
    stats: CompressionStats,
    dense_bytes: u64,
}

impl DmaModule {
    /// Creates a DMA whose compression module prunes at `threshold`.
    pub fn new(threshold: f32) -> Self {
        DmaModule {
            threshold,
            stats: CompressionStats::default(),
            dense_bytes: 0,
        }
    }

    /// Write path: dense data passes through; sparse-eligible data goes
    /// through the compression module (paper Fig. 14's "Sparse?" fork).
    pub fn write(&mut self, values: &[f32], sparse_eligible: bool) -> WritePacket {
        if !sparse_eligible {
            let bytes = (values.len() * 4) as u64;
            self.dense_bytes += bytes;
            return WritePacket::Dense { bytes };
        }
        let sparse = SparseVec::compress(values, self.threshold);
        let bytes = sparse.best_bytes();
        self.stats.merge(&sparse.stats());
        WritePacket::Compressed { sparse, bytes }
    }

    /// Read path for compressed data: the decoder returns the dense
    /// reconstruction and the list of *important* positions — the rows
    /// of dense co-operands that actually need fetching.
    pub fn read_decode(&self, sparse: &SparseVec) -> (Vec<f32>, Vec<u32>) {
        (sparse.decode(), sparse.indices().to_vec())
    }

    /// Bytes of a dense co-operand fetch reduced to only the rows the
    /// sparse operand marks important: `nnz × row_bytes` instead of
    /// `dense_len × row_bytes`.
    pub fn gathered_fetch_bytes(&self, sparse: &SparseVec, row_bytes: u64) -> u64 {
        sparse.nnz() as u64 * row_bytes
    }

    /// Aggregate compression statistics so far.
    pub fn stats(&self) -> &CompressionStats {
        &self.stats
    }

    /// Dense pass-through bytes so far.
    pub fn dense_bytes(&self) -> u64 {
        self.dense_bytes
    }
}

#[cfg(feature = "telemetry")]
impl DmaModule {
    /// [`DmaModule::write`] plus metric recording.
    ///
    /// Records `accel_dma_write_bytes_total{mode}` (mode = `dense` /
    /// `compressed`) and, for compressed packets, the achieved
    /// compressed-over-dense ratio into the
    /// `accel_dma_compression_ratio` histogram (decile buckets — the
    /// encoder never exceeds dense size).
    pub fn write_instrumented(
        &mut self,
        values: &[f32],
        sparse_eligible: bool,
        telemetry: Option<&eta_telemetry::Telemetry>,
    ) -> WritePacket {
        let packet = self.write(values, sparse_eligible);
        if let Some(t) = telemetry {
            match &packet {
                WritePacket::Dense { bytes } => t.incr_with(
                    eta_telemetry::keys::ACCEL_DMA_WRITE_BYTES_TOTAL,
                    eta_telemetry::labels!(mode = "dense"),
                    *bytes,
                ),
                WritePacket::Compressed { bytes, .. } => {
                    t.incr_with(
                        eta_telemetry::keys::ACCEL_DMA_WRITE_BYTES_TOTAL,
                        eta_telemetry::labels!(mode = "compressed"),
                        *bytes,
                    );
                    let dense = (values.len() * 4) as u64;
                    if dense > 0 {
                        t.observe_in(
                            eta_telemetry::keys::ACCEL_DMA_COMPRESSION_RATIO,
                            eta_telemetry::Labels::new(),
                            crate::arch::OCCUPANCY_BUCKETS,
                            *bytes as f64 / dense as f64,
                        );
                    }
                }
            }
        }
        packet
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_respects_capacity_and_tracks_high_water() {
        let mut q = Fifo::new(2);
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(!q.push(3), "full queue applies back-pressure");
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3));
        assert_eq!(q.total_pushed(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn dense_write_passes_through() {
        let mut dma = DmaModule::new(0.1);
        let p = dma.write(&[0.01, 0.5, 0.02], false);
        assert_eq!(p.bytes(), 12);
        assert_eq!(dma.dense_bytes(), 12);
        assert_eq!(dma.stats().total, 0);
    }

    #[test]
    fn sparse_write_compresses_and_counts() {
        let mut dma = DmaModule::new(0.1);
        let values: Vec<f32> = (0..100)
            .map(|i| if i % 4 == 0 { 0.9 } else { 0.01 })
            .collect();
        let p = dma.write(&values, true);
        assert!(p.bytes() < 400, "compressed below dense size");
        assert_eq!(dma.stats().total, 100);
        assert_eq!(dma.stats().kept, 25);
    }

    #[test]
    fn decoder_round_trips_and_exposes_indices() {
        let mut dma = DmaModule::new(0.1);
        let values = [0.5f32, 0.01, -0.8, 0.0];
        if let WritePacket::Compressed { sparse, .. } = dma.write(&values, true) {
            let (dense, idx) = dma.read_decode(&sparse);
            assert_eq!(dense, vec![0.5, 0.0, -0.8, 0.0]);
            assert_eq!(idx, vec![0, 2]);
            // Gathered fetch: only 2 of 4 rows needed.
            assert_eq!(dma.gathered_fetch_bytes(&sparse, 64), 128);
        } else {
            panic!("expected compression");
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_fifo_rejected() {
        let _: Fifo<u32> = Fifo::new(0);
    }
}
