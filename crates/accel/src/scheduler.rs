//! The Runtime Resource Allocation (R2A) scheduler and its static
//! competitor (paper Sec. V-C, Fig. 10).
//!
//! Processing elements execute either MatMul or EW work. A **static**
//! allocation fixes the split at design time; when the phase's actual
//! operation mix differs — which the memory-saving optimizations
//! guarantee, since MS1 moves EW work into the forward pass and MS2/MS1
//! shrink BP MatMul work at runtime — one group finishes early and
//! idles (the paper's Fig. 10 "idle time of EW"). The **R2A** scheduler
//! instead reassigns idle PEs to whichever operation has ready inputs
//! (*swing* PEs/channels), approaching full utilization at the cost of
//! a small mode-switch overhead.
//!
//! Static designs size the EW group for the *peak* EW demand of the
//! fused cell pipeline (the inference-accelerator practice, cf. ESE),
//! not the average — [`STATIC_EW_FRACTION`].

use serde::{Deserialize, Serialize};

/// Fraction of PEs a static design dedicates to EW/auxiliary work,
/// sized for the reordered forward pipeline's burst EW demand
/// (calibrated against the paper's TREC10-based static distribution).
pub const STATIC_EW_FRACTION: f64 = 0.40;

/// Relative makespan overhead of R2A's swing-mode switches.
pub const SWING_OVERHEAD: f64 = 0.03;

/// Operation counts of one execution phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Workload {
    /// Multiply-accumulate operations (MatMul, outer products).
    pub matmul_macs: u64,
    /// Element-wise operations.
    pub ew_ops: u64,
    /// Activation-function evaluations.
    pub act_ops: u64,
}

impl Workload {
    /// Sums two workloads.
    pub fn add(&self, other: &Workload) -> Workload {
        Workload {
            matmul_macs: self.matmul_macs + other.matmul_macs,
            ew_ops: self.ew_ops + other.ew_ops,
            act_ops: self.act_ops + other.act_ops,
        }
    }

    /// Total PE operations (MatMul + EW; activations run on the
    /// dedicated activation modules).
    pub fn pe_ops(&self) -> u64 {
        self.matmul_macs + self.ew_ops
    }
}

/// Timing result of scheduling one phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Makespan in cycles.
    pub cycles: f64,
    /// PE-cycles actually doing work.
    pub busy_pe_cycles: f64,
    /// PE-cycles available (`cycles × PE throughput`).
    pub capacity_pe_cycles: f64,
}

impl PhaseTiming {
    /// PE utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity_pe_cycles == 0.0 {
            0.0
        } else {
            (self.busy_pe_cycles / self.capacity_pe_cycles).min(1.0)
        }
    }

    /// Sequential composition of two phases.
    pub fn then(&self, other: &PhaseTiming) -> PhaseTiming {
        PhaseTiming {
            cycles: self.cycles + other.cycles,
            busy_pe_cycles: self.busy_pe_cycles + other.busy_pe_cycles,
            capacity_pe_cycles: self.capacity_pe_cycles + other.capacity_pe_cycles,
        }
    }
}

/// Schedules one phase under a static MatMul/EW partition.
///
/// `ops_per_cycle` is the machine's total PE throughput (operations per
/// cycle). The makespan is set by the slower group; the faster group
/// idles.
pub fn simulate_static(w: &Workload, ops_per_cycle: f64, ew_fraction: f64) -> PhaseTiming {
    assert!(
        (0.0..1.0).contains(&ew_fraction),
        "EW fraction must leave MatMul capacity"
    );
    let mm_cap = ops_per_cycle * (1.0 - ew_fraction);
    let ew_cap = ops_per_cycle * ew_fraction;
    let mm_cycles = w.matmul_macs as f64 / mm_cap.max(1e-9);
    let ew_cycles = if w.ew_ops == 0 {
        0.0
    } else {
        w.ew_ops as f64 / ew_cap.max(1e-9)
    };
    let cycles = mm_cycles.max(ew_cycles);
    PhaseTiming {
        cycles,
        busy_pe_cycles: w.pe_ops() as f64,
        capacity_pe_cycles: cycles * ops_per_cycle,
    }
}

/// Schedules one phase under R2A dynamic allocation with swing
/// PEs/channels: all PEs contribute to whichever operation is ready,
/// with [`SWING_OVERHEAD`] lost to mode switches.
pub fn simulate_dynamic(w: &Workload, ops_per_cycle: f64) -> PhaseTiming {
    let cycles = w.pe_ops() as f64 / ops_per_cycle.max(1e-9) * (1.0 + SWING_OVERHEAD);
    PhaseTiming {
        cycles,
        busy_pe_cycles: w.pe_ops() as f64,
        capacity_pe_cycles: cycles * ops_per_cycle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced() -> Workload {
        Workload {
            matmul_macs: 750_000,
            ew_ops: 250_000,
            act_ops: 10_000,
        }
    }

    fn mm_heavy() -> Workload {
        Workload {
            matmul_macs: 990_000,
            ew_ops: 10_000,
            act_ops: 1_000,
        }
    }

    #[test]
    fn static_matches_dynamic_when_mix_matches_partition() {
        // 75/25 workload on a 75/25 partition: both groups finish
        // together, utilization near 1.
        let s = simulate_static(&balanced(), 1000.0, 0.25);
        assert!((s.utilization() - 1.0).abs() < 1e-9);
        let d = simulate_dynamic(&balanced(), 1000.0);
        assert!(s.cycles < d.cycles * 1.01, "static is optimal when matched");
    }

    #[test]
    fn static_loses_badly_on_mismatched_mix() {
        // MatMul-heavy phase on a 75/25 partition: the EW group idles.
        let s = simulate_static(&mm_heavy(), 1000.0, 0.25);
        let d = simulate_dynamic(&mm_heavy(), 1000.0);
        assert!(
            s.cycles > d.cycles * 1.2,
            "static {s:?} should trail dynamic {d:?} on a mismatched mix"
        );
        assert!(s.utilization() < 0.85);
        assert!(d.utilization() > 0.95);
    }

    #[test]
    fn dynamic_overhead_is_small_and_fixed() {
        let d = simulate_dynamic(&mm_heavy(), 1000.0);
        let ideal = mm_heavy().pe_ops() as f64 / 1000.0;
        assert!((d.cycles / ideal - 1.0 - SWING_OVERHEAD).abs() < 1e-9);
    }

    #[test]
    fn phase_composition_adds() {
        let a = simulate_dynamic(&balanced(), 1000.0);
        let both = a.then(&a);
        assert!((both.cycles - 2.0 * a.cycles).abs() < 1e-9);
        assert!((both.utilization() - a.utilization()).abs() < 1e-9);
    }

    #[test]
    fn zero_ew_phase_has_no_ew_cycles() {
        let w = Workload {
            matmul_macs: 1000,
            ew_ops: 0,
            act_ops: 0,
        };
        let s = simulate_static(&w, 100.0, 0.25);
        // Makespan set entirely by MatMul on 75 % of the PEs.
        assert!((s.cycles - 1000.0 / 75.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "MatMul capacity")]
    fn full_ew_fraction_rejected() {
        let _ = simulate_static(&balanced(), 100.0, 1.0);
    }
}
