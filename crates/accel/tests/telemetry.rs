//! The `*_instrumented` entry points must mirror the simulator's
//! behavior exactly (telemetry is an observer, never a participant) and
//! record the documented metric names.

#![cfg(feature = "telemetry")]

use eta_accel::accumulator::AccumulatorSim;
use eta_accel::arch::{AccelConfig, ArchKind, EtaAccel};
use eta_accel::dma::DmaModule;
use eta_accel::timeline::{trace, trace_instrumented, Alloc, CellKernels};
use eta_memsim::model::{LstmShape, OptEffects};
use eta_telemetry::{keys, MetricValue, RunManifest, Snapshot, Telemetry};

/// Total observations across every label series of one histogram.
fn histogram_count(snap: &Snapshot, name: &str) -> u64 {
    snap.metrics
        .iter()
        .filter(|m| m.name == name)
        .map(|m| match &m.value {
            MetricValue::Histogram { histogram } => histogram.count,
            _ => 0,
        })
        .sum()
}

fn fresh() -> Telemetry {
    Telemetry::new(RunManifest::capture("accel-test", "0".into(), 0))
}

fn cells(n: usize) -> Vec<CellKernels> {
    vec![
        CellKernels {
            mm_ops: 96_000,
            ew_ops: 4_000,
        };
        n
    ]
}

#[test]
fn simulate_instrumented_matches_simulate_and_records() {
    let t = fresh();
    let shape = LstmShape::new(1536, 1536, 4, 35, 128);
    let eff = OptEffects::combined(0.35, 0.49);
    let m = EtaAccel::new(AccelConfig::paper_4board(), ArchKind::DynArch);

    let plain = m.simulate(&shape, &eff);
    let instrumented = m.simulate_instrumented(&shape, &eff, Some(&t));
    assert_eq!(instrumented, plain, "telemetry must not perturb the report");
    // And the None path is the plain path.
    assert_eq!(m.simulate_instrumented(&shape, &eff, None), plain);

    let snap = t.snapshot();
    assert_eq!(
        histogram_count(&snap, keys::ACCEL_PE_BUSY_FRACTION),
        2,
        "one fw + one bp observation"
    );
    let occupancy = snap
        .histogram(keys::ACCEL_PE_BUSY_FRACTION)
        .expect("PE occupancy histogram");
    assert!(occupancy.max <= 1.0 && occupancy.min > 0.0);
    assert_eq!(
        snap.gauge(keys::ACCEL_UTILIZATION).unwrap(),
        plain.utilization
    );
    assert_eq!(snap.gauge(keys::ACCEL_TFLOPS).unwrap(), plain.tflops);
    assert_eq!(
        snap.counter_total(keys::ACCEL_TRAFFIC_BYTES_TOTAL),
        plain.traffic_bytes
    );
}

#[test]
fn trace_instrumented_counts_swing_handoffs() {
    let t = fresh();
    let cs = cells(6);
    let plain = trace(&cs, 1000.0, Alloc::Dynamic);
    let tl = trace_instrumented(&cs, 1000.0, Alloc::Dynamic, Some(&t));
    assert_eq!(tl, plain);

    let snap = t.snapshot();
    // 6 cells × 2 segments, every boundary switches kind: 11 handoffs.
    assert_eq!(snap.counter_total(keys::ACCEL_SWING_HANDOFFS_TOTAL), 11);
    // 12 segments total across the MatMul/EW label series.
    assert_eq!(histogram_count(&snap, keys::ACCEL_PE_BUSY_FRACTION), 12);

    // Static allocation has no swing PEs, hence no handoffs.
    let t2 = fresh();
    trace_instrumented(&cs, 1000.0, Alloc::Static { ew_fraction: 0.4 }, Some(&t2));
    assert_eq!(
        t2.snapshot()
            .counter_total(keys::ACCEL_SWING_HANDOFFS_TOTAL),
        0
    );
}

#[test]
fn dma_write_instrumented_records_compression_ratio() {
    let t = fresh();
    let mut dma = DmaModule::new(0.1);
    // Mostly-pruned stream compresses well.
    let mut values = vec![0.0f32; 256];
    values[7] = 1.0;
    values[101] = -2.0;
    let packet = dma.write_instrumented(&values, true, Some(&t));
    assert!(packet.bytes() < 256 * 4);
    let dense = dma.write_instrumented(&values, false, Some(&t));
    assert_eq!(dense.bytes(), 256 * 4);

    let snap = t.snapshot();
    let ratio = snap
        .histogram(keys::ACCEL_DMA_COMPRESSION_RATIO)
        .expect("ratio histogram");
    assert_eq!(ratio.count, 1, "dense writes record no ratio");
    assert!(
        ratio.max < 0.5,
        "sparse stream should compress: {}",
        ratio.max
    );
    assert_eq!(
        snap.counter_total(keys::ACCEL_DMA_WRITE_BYTES_TOTAL),
        packet.bytes() + dense.bytes()
    );
}

#[test]
fn accumulator_instrumented_records_stalls() {
    let t = fresh();
    let sim = AccumulatorSim::default();
    let values = vec![1.0f32; 64];
    let run = sim.run_instrumented(&values, Some(&t));
    assert_eq!(run, sim.run(&values));

    let snap = t.snapshot();
    let stall = snap
        .histogram(keys::ACCEL_ACCUMULATOR_STALL_FRACTION)
        .expect("stall histogram");
    assert_eq!(stall.count, 1);
    let ideal = 64 + sim.add_latency as u64;
    assert_eq!(
        snap.counter_total(keys::ACCEL_ACCUMULATOR_STALL_CYCLES_TOTAL),
        run.cycles - ideal.min(run.cycles)
    );
}
