//! Property-based tests of the footprint tracker's invariants: the
//! peak is a true high-water mark (monotone, bounding live), frees
//! never underflow the live count, and the serde round-trip preserves
//! every peak.

use eta_memsim::{DataCategory, MemoryTracker};
use proptest::collection::vec;
use proptest::prelude::*;

const CATEGORIES: [DataCategory; 3] = [
    DataCategory::Weights,
    DataCategory::Activations,
    DataCategory::Intermediates,
];

fn category(i: usize) -> DataCategory {
    CATEGORIES[i % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn peak_total_is_monotone_and_bounds_live(
        ops in vec((0usize..3, 0usize..2, 0u64..4096), 1..64),
    ) {
        let mut t = MemoryTracker::new();
        let mut prev_peak = 0u64;
        for (c, kind, bytes) in ops {
            let cat = category(c);
            if kind == 0 {
                t.alloc(cat, bytes);
            } else {
                // Matched frees only: never release more than is live.
                t.free(cat, bytes.min(t.live(cat)));
            }
            prop_assert!(
                t.peak_total() >= prev_peak,
                "peak_total regressed: {} -> {}",
                prev_peak,
                t.peak_total()
            );
            prop_assert!(t.peak_total() >= t.live_total());
            for cat in CATEGORIES {
                prop_assert!(t.peak(cat) >= t.live(cat));
            }
            prev_peak = t.peak_total();
        }
    }

    #[test]
    fn serde_round_trip_preserves_peaks(
        ops in vec((0usize..3, 1u64..4096), 1..48),
    ) {
        let mut t = MemoryTracker::new();
        for (c, bytes) in &ops {
            t.alloc(category(*c), *bytes);
        }
        // Free half of each allocation so live diverges from peak.
        for (c, bytes) in &ops {
            t.free(category(*c), bytes / 2);
        }
        let text = serde_json::to_string(&t).expect("tracker serializes");
        let back: MemoryTracker = serde_json::from_str(&text).expect("tracker parses");
        prop_assert_eq!(back.peak_total(), t.peak_total());
        for cat in CATEGORIES {
            prop_assert_eq!(back.peak(cat), t.peak(cat));
            prop_assert_eq!(back.live(cat), t.live(cat));
        }
        prop_assert_eq!(back, t);
    }
}

// `MemoryTracker::free` debug-asserts on unmatched frees (they are
// caller bugs), so the saturation contract is only observable — and
// only promised — in release builds.
#[cfg(not(debug_assertions))]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unmatched_free_saturates_in_release(
        ops in vec((0usize..3, 0usize..2, 0u64..4096), 1..64),
    ) {
        let mut t = MemoryTracker::new();
        for (c, kind, bytes) in ops {
            let cat = category(c);
            if kind == 0 {
                t.alloc(cat, bytes);
            } else {
                // Deliberately unmatched: may exceed the live count.
                let live_before = t.live(cat);
                t.free(cat, bytes);
                prop_assert_eq!(t.live(cat), live_before.saturating_sub(bytes));
            }
            prop_assert!(t.peak_total() >= t.live_total());
        }
    }
}
