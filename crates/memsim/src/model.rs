//! Closed-form footprint and DRAM-traffic models of LSTM training.
//!
//! The figure harnesses need footprint/traffic numbers for model shapes up
//! to hidden size 3072 × 8 layers × 303 timesteps × batch 128 — too large
//! to execute tensor-by-tensor on a CPU. This module provides the
//! closed-form equivalents of what the instrumented training framework
//! measures, for both the baseline flow and the MS1/MS2-optimized flows.
//! The small-scale instrumented runs (see `eta-lstm-core`) validate these
//! forms; the harness then applies them at paper scale.
//!
//! # Calibration
//!
//! Three constants are calibrated against the paper's own
//! characterization rather than derived from first principles, because
//! they stand in for GPU library behavior (kernel fusion, L2 persistence)
//! the paper measured but did not publish:
//!
//! - [`INT_TRAFFIC_FACTOR`] — DRAM touches per stored intermediate
//!   element (1 write + reads from its multiple BP consumers). Set to
//!   2.31 so that the intermediate/activation traffic ratio equals the
//!   paper's measured 4.34× average (Fig. 4) at the characterization
//!   anchor (3 layers): per timestep the five stored intermediates per
//!   layer move `5·3·2.31` units against the activations'
//!   `(3+1)·2.0`, and `(15·2.31)/(4·2.0) = 4.33`.
//! - [`ACT_TRAFFIC_FACTOR`] — one write during FW plus one read during
//!   BP for every stored activation element.
//! - [`LstmShape::weight_miss_fraction`] — the fraction of a layer's weights
//!   refetched from DRAM per timestep, `0.01 · min(1, wu/24 MiB)`,
//!   reflecting L2 persistence of weight tiles across timesteps. The
//!   value reproduces the paper's observed ≈1.08× parameter/activation
//!   traffic ratio at the H1024 operating point.

use serde::{Deserialize, Serialize};

/// Bytes per `f32` element.
pub const BYTES_F32: u64 = 4;

/// Intermediate variables stored per LSTM cell by the baseline flow:
/// `i_t, f_t, c_t, o_t, s_t` (paper Sec. III-B).
pub const STORED_INTERMEDIATES_PER_CELL: u64 = 5;

/// Compressed BP-EW-P1 streams stored per cell by MS1:
/// `p_i, p_f, p_c, p_o, p_h, p_s` (see `eta-lstm-core::ms1`).
pub const P1_STREAMS_PER_CELL: u64 = 6;

/// DRAM touches per stored-intermediate element (calibrated; see module
/// docs).
pub const INT_TRAFFIC_FACTOR: f64 = 2.31;

/// DRAM touches per stored-activation element (write in FW + read in BP).
pub const ACT_TRAFFIC_FACTOR: f64 = 2.0;

/// Effective L2 budget available for persisting weight tiles across
/// timesteps (bytes). Modeled on the V100's 6 MiB L2 plus register-file
/// persistence techniques; see module docs for calibration.
pub const WEIGHT_L2_BUDGET: f64 = 24.0 * 1024.0 * 1024.0;

/// Maximum per-timestep weight refetch fraction (calibrated; see module
/// docs).
pub const WEIGHT_MISS_MAX: f64 = 0.01;

/// Bitmap-index overhead per element of a compressed stream, in bytes
/// (1 presence bit per element).
pub const BITMAP_BITS_PER_ELEMENT: f64 = 1.0 / 8.0;

/// Fraction of skipped-cell activation bytes actually elided by MS2.
/// `x_t` of a skipped cell is never needed again, but `h_t` may still be
/// consumed by a neighboring kept cell's weight-gradient computation, so
/// only about two thirds of a skipped cell's activation volume disappears.
pub const MS2_ACT_SKIP_SHARE: f64 = 2.0 / 3.0;

/// Shape of an LSTM training workload, sufficient to evaluate the
/// footprint/traffic/compute models.
///
/// # Example
///
/// ```
/// use eta_memsim::model::LstmShape;
///
/// let ptb = LstmShape::new(1536, 1536, 4, 35, 128);
/// assert!(ptb.weight_bytes() > 0);
/// assert!(ptb.intermediate_bytes() > ptb.activation_bytes());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LstmShape {
    /// Feature size of the first layer's input.
    pub input_size: usize,
    /// Hidden size `H` (gate width; weight matrices are `4H × in` and
    /// `4H × H`).
    pub hidden: usize,
    /// Number of stacked LSTM layers (paper "layer number", LN).
    pub layers: usize,
    /// Unrolled timesteps per layer (paper "layer length", LL).
    pub seq_len: usize,
    /// Minibatch size (the paper evaluates with 128).
    pub batch: usize,
}

impl LstmShape {
    /// Creates a shape. Any dimension may be small (for tests) or
    /// paper-scale.
    pub fn new(
        input_size: usize,
        hidden: usize,
        layers: usize,
        seq_len: usize,
        batch: usize,
    ) -> Self {
        LstmShape {
            input_size,
            hidden,
            layers,
            seq_len,
            batch,
        }
    }

    /// Input feature size seen by layer `l` (the first layer reads the
    /// embedding; deeper layers read the previous layer's `h`).
    pub fn layer_input(&self, l: usize) -> usize {
        if l == 0 {
            self.input_size
        } else {
            self.hidden
        }
    }

    /// Parameter bytes of layer `l`: `W[4H × in] + U[4H × H] + b[4H]`.
    pub fn layer_weight_bytes(&self, l: usize) -> u64 {
        let h = self.hidden as u64;
        let inp = self.layer_input(l) as u64;
        (4 * h * inp + 4 * h * h + 4 * h) * BYTES_F32
    }

    /// Total parameter bytes across all layers.
    pub fn weight_bytes(&self) -> u64 {
        (0..self.layers).map(|l| self.layer_weight_bytes(l)).sum()
    }

    /// Bytes of stored activations per training iteration: the first
    /// layer's input sequence plus every layer's `h` sequence.
    pub fn activation_bytes(&self) -> u64 {
        let per_step = self.input_size as u64 + (self.layers * self.hidden) as u64;
        per_step * (self.seq_len * self.batch) as u64 * BYTES_F32
    }

    /// Bytes of stored forward intermediates per iteration (baseline
    /// flow): five `H`-wide tensors per cell.
    pub fn intermediate_bytes(&self) -> u64 {
        STORED_INTERMEDIATES_PER_CELL
            * (self.layers * self.seq_len * self.batch * self.hidden) as u64
            * BYTES_F32
    }

    /// Total number of LSTM cells in the unrolled graph.
    pub fn cells(&self) -> u64 {
        (self.layers * self.seq_len) as u64
    }

    /// Multiply-accumulate count of one forward pass.
    pub fn forward_macs(&self) -> u64 {
        let h = self.hidden as u64;
        let b = self.batch as u64;
        (0..self.layers)
            .map(|l| {
                let inp = self.layer_input(l) as u64;
                self.seq_len as u64 * b * 4 * h * (inp + h)
            })
            .sum()
    }

    /// Element-wise operation count of one forward pass (gate
    /// activations, state and output updates — about 9 ops per hidden
    /// element per cell).
    pub fn forward_ew_ops(&self) -> u64 {
        9 * (self.layers * self.seq_len * self.batch * self.hidden) as u64
    }

    /// Total floating-point operations of one training iteration.
    ///
    /// One MAC counts as two FLOPs. Backpropagation performs two GEMMs of
    /// the forward size (input gradients and weight gradients), so
    /// training ≈ 3× forward GEMM work, plus the element-wise work in
    /// both directions.
    pub fn training_flops(&self) -> u64 {
        6 * self.forward_macs() + 3 * self.forward_ew_ops()
    }

    /// Per-timestep fraction of layer `l`'s weights refetched from DRAM
    /// (L2-persistence model; see module docs).
    pub fn weight_miss_fraction(&self, l: usize) -> f64 {
        let wu = self.layer_weight_bytes(l) as f64;
        WEIGHT_MISS_MAX * (wu / WEIGHT_L2_BUDGET).min(1.0)
    }
}

/// Memory footprint split by category, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FootprintBreakdown {
    /// Weight matrices and their gradient buffers.
    pub weights: u64,
    /// Stored activations.
    pub activations: u64,
    /// Stored forward intermediates (or their compressed replacements).
    pub intermediates: u64,
}

impl FootprintBreakdown {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.weights + self.activations + self.intermediates
    }

    /// Intermediates share of the total, in `[0, 1]`.
    pub fn intermediate_share(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.intermediates as f64 / self.total() as f64
        }
    }
}

/// DRAM traffic split by category, in bytes per training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficBreakdown {
    /// Weight matrix fetches plus gradient write-back.
    pub weights: u64,
    /// Activation stores and BP reloads.
    pub activations: u64,
    /// Intermediate-variable stores and BP reloads.
    pub intermediates: u64,
}

impl TrafficBreakdown {
    /// Total bytes moved.
    pub fn total(&self) -> u64 {
        self.weights + self.activations + self.intermediates
    }

    /// Intermediate-to-activation traffic ratio (the paper's headline
    /// 4.34× average).
    pub fn int_to_act_ratio(&self) -> f64 {
        if self.activations == 0 {
            0.0
        } else {
            self.intermediates as f64 / self.activations as f64
        }
    }
}

/// Measured effects of the software optimizations, produced by the
/// instrumented training runs and consumed by the scaled models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptEffects {
    /// Whether MS1 (cell-level variable reduction) is active.
    pub ms1: bool,
    /// Whether MS2 (BP cell skipping) is active.
    pub ms2: bool,
    /// Post-pruning density of the BP-EW-P1 streams, in `[0, 1]`
    /// (paper Fig. 6 implies ≈0.35 at threshold 0.1). Ignored unless
    /// `ms1`.
    pub p1_density: f64,
    /// Fraction of BP cells skipped by the Eq. 4 predictor, in `[0, 1]`.
    /// Ignored unless `ms2`.
    pub skip_fraction: f64,
    /// Whether MS3 (recompute checkpointing + narrow storage) is active.
    pub ms3: bool,
    /// MS3 checkpoint interval `k`: only every k-th cell's record stays
    /// in the tape; the rest are recomputed in BP. Ignored unless `ms3`.
    pub ms3_k: usize,
    /// Bytes per stored element under the MS3 storage precision
    /// (4 = f32, 2 = bf16/f16). Ignored unless `ms3`.
    pub ms3_bytes_per_element: u64,
}

impl OptEffects {
    /// The unoptimized baseline.
    pub fn baseline() -> Self {
        OptEffects {
            ms1: false,
            ms2: false,
            p1_density: 1.0,
            skip_fraction: 0.0,
            ms3: false,
            ms3_k: 1,
            ms3_bytes_per_element: BYTES_F32,
        }
    }

    /// MS1 only, with a measured P1 density.
    pub fn ms1(p1_density: f64) -> Self {
        OptEffects {
            ms1: true,
            p1_density,
            ..Self::baseline()
        }
    }

    /// MS2 only, with a measured skip fraction.
    pub fn ms2(skip_fraction: f64) -> Self {
        OptEffects {
            ms2: true,
            skip_fraction,
            ..Self::baseline()
        }
    }

    /// Both paper optimizations (the paper's "Combine-MS").
    pub fn combined(p1_density: f64, skip_fraction: f64) -> Self {
        OptEffects {
            ms1: true,
            ms2: true,
            p1_density,
            skip_fraction,
            ..Self::baseline()
        }
    }

    /// MS3 only: checkpoint interval `k`, storing
    /// `bytes_per_element`-wide elements (4 = f32, 2 = bf16/f16).
    pub fn ms3(k: usize, bytes_per_element: u64) -> Self {
        Self::baseline().with_ms3(k, bytes_per_element)
    }

    /// Composes MS3 onto any existing effect set (e.g.
    /// `OptEffects::combined(d, s).with_ms3(4, 2)` for the full
    /// three-way composition).
    pub fn with_ms3(mut self, k: usize, bytes_per_element: u64) -> Self {
        self.ms3 = true;
        self.ms3_k = k.max(1);
        self.ms3_bytes_per_element = bytes_per_element;
        self
    }

    /// Per-element byte ratio of MS1's compressed intermediates relative
    /// to the baseline's dense ones: six bitmap-indexed sparse streams at
    /// density `d` replacing five dense streams:
    /// `(6/5) · (1/32 + d)`, clamped at 1 — when pruning removes too
    /// little, the DMA's "Sparse?" fork (paper Fig. 14) falls back to
    /// storing the dense baseline streams, so compression never costs
    /// more than the baseline.
    pub fn ms1_intermediate_ratio(&self) -> f64 {
        if !self.ms1 {
            return 1.0;
        }
        let per_element =
            (BITMAP_BITS_PER_ELEMENT + self.p1_density * BYTES_F32 as f64) / BYTES_F32 as f64;
        ((P1_STREAMS_PER_CELL as f64 / STORED_INTERMEDIATES_PER_CELL as f64) * per_element).min(1.0)
    }

    /// Fraction of cells whose BP (and FW intermediate storage) survives
    /// MS2.
    pub fn kept_fraction(&self) -> f64 {
        if self.ms2 {
            1.0 - self.skip_fraction
        } else {
            1.0
        }
    }

    /// Per-element byte ratio of the MS3 storage precision relative to
    /// f32 (`1.0` when MS3 is off, `0.5` for bf16/f16).
    pub fn ms3_storage_ratio(&self) -> f64 {
        if self.ms3 {
            self.ms3_bytes_per_element as f64 / BYTES_F32 as f64
        } else {
            1.0
        }
    }

    /// Fraction of cell records the MS3 tape keeps (`1/k`; `1.0` when
    /// MS3 is off).
    pub fn ms3_tape_fraction(&self) -> f64 {
        if self.ms3 {
            1.0 / self.ms3_k.max(1) as f64
        } else {
            1.0
        }
    }

    /// Fraction of cells BP must recompute under MS3 (`1 − 1/k`; `0.0`
    /// when MS3 is off).
    pub fn ms3_recompute_fraction(&self) -> f64 {
        1.0 - self.ms3_tape_fraction()
    }
}

/// Footprint of one training iteration under the given optimizations.
///
/// Weight footprint counts the parameters once: gradients accumulate
/// into per-layer transient buffers that are folded into the update and
/// do not contribute to the high-water mark the paper's Fig. 5 reports.
/// MS1 replaces the dense intermediates with compressed P1 streams;
/// MS2 removes stored state for skipped cells. MS3 narrows every stored
/// activation/intermediate element to the storage precision and keeps
/// only every k-th cell record in the tape (hidden states stay resident
/// — they seed recompute — so activations shrink by the precision ratio
/// only, while intermediates additionally shrink by `1/k`).
pub fn footprint(shape: &LstmShape, eff: &OptEffects) -> FootprintBreakdown {
    let act_keep = 1.0 - (1.0 - eff.kept_fraction()) * MS2_ACT_SKIP_SHARE;
    let narrow = eff.ms3_storage_ratio();
    FootprintBreakdown {
        weights: shape.weight_bytes(),
        activations: scale(shape.activation_bytes(), act_keep * narrow),
        intermediates: scale(
            shape.intermediate_bytes(),
            eff.ms1_intermediate_ratio() * eff.kept_fraction() * eff.ms3_tape_fraction() * narrow,
        ),
    }
}

/// DRAM traffic of one training iteration under the given optimizations.
///
/// - **Weights**: per-timestep refetch of the non-L2-resident fraction in
///   both FW and BP, plus one gradient write-back of the full parameter
///   size. MS1 lets BP-MatMul skip weight columns whose gate-gradient
///   operand was pruned (density factor); MS2 removes the BP fetches of
///   skipped cells. Both reductions apply to the BP half of the traffic.
/// - **Activations**: one store + one BP load per element; MS2 elides
///   [`MS2_ACT_SKIP_SHARE`] of a skipped cell's volume.
/// - **Intermediates**: [`INT_TRAFFIC_FACTOR`] touches per element;
///   MS1 swaps in the compressed streams, MS2 removes skipped cells.
/// - **MS3**: stored elements narrow to the storage precision and only
///   `1/k` of cell records hit the tape; in exchange, BP re-streams the
///   FW weight fetch and re-reads the seed activations for the `1−1/k`
///   recomputed cells. Recomputed intermediates live in the workspace
///   (cache-resident) and add no DRAM traffic.
pub fn traffic(shape: &LstmShape, eff: &OptEffects) -> TrafficBreakdown {
    // Weights: streaming refetch (FW + BP halves) + gradient write-back.
    let mut stream = 0.0f64;
    for l in 0..shape.layers {
        let per_phase = shape.seq_len as f64
            * shape.layer_weight_bytes(l) as f64
            * shape.weight_miss_fraction(l);
        stream += 2.0 * per_phase;
    }
    let grad = shape.weight_bytes() as f64;
    // BP-half scaling from MS1 sparsity and MS2 skipping.
    let bp_scale = if eff.ms1 { eff.p1_density } else { 1.0 } * eff.kept_fraction();
    let recompute = eff.ms3_recompute_fraction();
    // MS3 recompute replays the FW weight stream for dropped cells.
    let weight_traffic =
        stream * (0.5 + 0.5 * bp_scale) + grad * (0.5 + 0.5 * bp_scale) + stream * 0.5 * recompute;

    let act_keep = 1.0 - (1.0 - eff.kept_fraction()) * MS2_ACT_SKIP_SHARE;
    let narrow = eff.ms3_storage_ratio();
    // Store + BP load of narrowed activations, plus one extra seed read
    // per recomputed cell.
    let act_traffic =
        shape.activation_bytes() as f64 * (ACT_TRAFFIC_FACTOR + recompute) * act_keep * narrow;

    let int_base = shape.intermediate_bytes() as f64;
    let ms3_int = eff.ms3_tape_fraction() * narrow;
    let int_traffic = if eff.ms1 {
        // Compressed P1 streams: one store + one load each, plus the
        // residual dense echo of the sparse gate gradients flowing into
        // BP-MatMul (scales with density).
        let compressed = int_base * eff.ms1_intermediate_ratio() * 2.0;
        let echo = int_base * 0.3 * eff.p1_density;
        (compressed + echo) * eff.kept_fraction() * ms3_int
    } else {
        int_base * INT_TRAFFIC_FACTOR * eff.kept_fraction() * ms3_int
    };

    TrafficBreakdown {
        weights: weight_traffic as u64,
        activations: act_traffic as u64,
        intermediates: int_traffic as u64,
    }
}

fn scale(bytes: u64, factor: f64) -> u64 {
    (bytes as f64 * factor) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h1024() -> LstmShape {
        LstmShape::new(1024, 1024, 3, 35, 128)
    }

    #[test]
    fn weight_bytes_match_hand_computation() {
        let s = LstmShape::new(8, 4, 2, 3, 1);
        // layer0: 4*4*8 + 4*4*4 + 4*4 = 128+64+16 = 208 elems
        // layer1: 4*4*4 + 4*4*4 + 16 = 144 elems
        assert_eq!(s.weight_bytes(), (208 + 144) * 4);
    }

    #[test]
    fn intermediate_bytes_use_five_streams() {
        let s = LstmShape::new(8, 4, 2, 3, 2);
        assert_eq!(s.intermediate_bytes(), 5 * 2 * 3 * 2 * 4 * 4);
    }

    #[test]
    fn baseline_int_to_act_ratio_matches_paper() {
        // With input_size == hidden, activations per step are
        // (1 + layers)·H vs intermediates 5·layers·H; the traffic factors
        // are calibrated to give ≈4.34 at the paper's 3-layer config
        // where act ≈ (4/3)·layers·H.
        let t = traffic(&h1024(), &OptEffects::baseline());
        let ratio = t.int_to_act_ratio();
        assert!(
            (3.0..6.0).contains(&ratio),
            "intermediate/activation traffic ratio {ratio} out of paper band"
        );
    }

    #[test]
    fn baseline_param_to_act_ratio_near_unity_at_h1024() {
        let t = traffic(&h1024(), &OptEffects::baseline());
        let ratio = t.weights as f64 / t.activations as f64;
        assert!(
            (0.4..2.5).contains(&ratio),
            "parameter/activation traffic ratio {ratio} far from the paper's ≈1.08"
        );
    }

    #[test]
    fn intermediates_dominate_footprint_at_scale() {
        let f = footprint(&h1024(), &OptEffects::baseline());
        let share = f.intermediate_share();
        assert!(
            (0.30..0.80).contains(&share),
            "intermediate footprint share {share} out of paper band (avg 47.18 %)"
        );
    }

    #[test]
    fn ms1_shrinks_intermediates_only() {
        let base = footprint(&h1024(), &OptEffects::baseline());
        let ms1 = footprint(&h1024(), &OptEffects::ms1(0.35));
        assert!(ms1.intermediates < base.intermediates / 2);
        assert_eq!(ms1.activations, base.activations);
        assert_eq!(ms1.weights, base.weights);
    }

    #[test]
    fn ms1_keeps_activation_traffic() {
        let base = traffic(&h1024(), &OptEffects::baseline());
        let ms1 = traffic(&h1024(), &OptEffects::ms1(0.35));
        assert_eq!(ms1.activations, base.activations);
        assert!(ms1.intermediates < base.intermediates);
        assert!(ms1.weights < base.weights);
    }

    #[test]
    fn ms2_reduces_all_three_categories() {
        let base = traffic(&h1024(), &OptEffects::baseline());
        let ms2 = traffic(&h1024(), &OptEffects::ms2(0.49));
        assert!(ms2.weights < base.weights);
        assert!(ms2.activations < base.activations);
        assert!(ms2.intermediates < base.intermediates);
        // Weight reduction ≈ σ/2 ≈ 24.5 %.
        let wred = 1.0 - ms2.weights as f64 / base.weights as f64;
        assert!((0.15..0.35).contains(&wred), "weight reduction {wred}");
        // Intermediate reduction ≈ σ ≈ 49 %.
        let ired = 1.0 - ms2.intermediates as f64 / base.intermediates as f64;
        assert!(
            (0.40..0.60).contains(&ired),
            "intermediate reduction {ired}"
        );
    }

    #[test]
    fn combined_intermediate_traffic_reduction_near_eighty_percent() {
        let base = traffic(&h1024(), &OptEffects::baseline());
        let comb = traffic(&h1024(), &OptEffects::combined(0.35, 0.49));
        let red = 1.0 - comb.intermediates as f64 / base.intermediates as f64;
        assert!(
            (0.70..0.95).contains(&red),
            "combined intermediate traffic reduction {red}, paper reports 80.04 %"
        );
    }

    #[test]
    fn combined_footprint_reduction_in_paper_band() {
        let base = footprint(&h1024(), &OptEffects::baseline());
        let comb = footprint(&h1024(), &OptEffects::combined(0.30, 0.55));
        let red = 1.0 - comb.total() as f64 / base.total() as f64;
        assert!(
            (0.30..0.75).contains(&red),
            "combined footprint reduction {red}, paper avg 57.52 %"
        );
    }

    #[test]
    fn flops_scale_with_dimensions() {
        let small = LstmShape::new(64, 64, 1, 4, 2);
        let wide = LstmShape::new(64, 128, 1, 4, 2);
        let deep = LstmShape::new(64, 64, 2, 4, 2);
        assert!(wide.training_flops() > 2 * small.training_flops());
        assert!(deep.training_flops() > small.training_flops());
    }

    #[test]
    fn effects_constructors() {
        assert!(!OptEffects::baseline().ms1);
        assert!(OptEffects::ms1(0.3).ms1);
        assert!(OptEffects::ms2(0.4).ms2);
        let c = OptEffects::combined(0.3, 0.4);
        assert!(c.ms1 && c.ms2);
        assert!((OptEffects::baseline().ms1_intermediate_ratio() - 1.0).abs() < 1e-12);
        assert!((OptEffects::ms2(0.4).kept_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ms3_tape_scales_inverse_k_and_precision() {
        let base = footprint(&h1024(), &OptEffects::baseline());
        // f32 storage, k=4: intermediates shrink to exactly 1/4.
        let ckpt = footprint(&h1024(), &OptEffects::ms3(4, 4));
        assert_eq!(ckpt.intermediates, base.intermediates / 4);
        assert_eq!(ckpt.activations, base.activations);
        // bf16 storage, k=4: a further halving everywhere that stores.
        let narrow = footprint(&h1024(), &OptEffects::ms3(4, 2));
        assert_eq!(narrow.intermediates, base.intermediates / 8);
        assert_eq!(narrow.activations, base.activations / 2);
        assert_eq!(narrow.weights, base.weights);
    }

    #[test]
    fn ms3_f32_k1_is_footprint_and_traffic_noop() {
        let eff = OptEffects::ms3(1, 4);
        assert_eq!(
            footprint(&h1024(), &eff),
            footprint(&h1024(), &OptEffects::baseline())
        );
        assert_eq!(
            traffic(&h1024(), &eff),
            traffic(&h1024(), &OptEffects::baseline())
        );
    }

    #[test]
    fn ms3_recompute_costs_weight_traffic() {
        let base = traffic(&h1024(), &OptEffects::baseline());
        let ms3 = traffic(&h1024(), &OptEffects::ms3(4, 2));
        // Replayed FW weight stream makes weight traffic strictly worse…
        assert!(ms3.weights > base.weights);
        // …in exchange for large intermediate/activation savings.
        assert!(ms3.intermediates < base.intermediates / 4);
        assert!(ms3.total() < base.total());
    }

    #[test]
    fn ms3_composes_with_combined_ms() {
        let shape = h1024();
        let parts = [
            footprint(&shape, &OptEffects::combined(0.35, 0.49)),
            footprint(&shape, &OptEffects::ms3(4, 2)),
        ];
        let all = footprint(&shape, &OptEffects::combined(0.35, 0.49).with_ms3(4, 2));
        // The three-way composition never exceeds any single component's
        // footprint: the savings multiply per category.
        for p in &parts {
            assert!(all.total() <= p.total());
            assert!(all.intermediates <= p.intermediates);
            assert!(all.activations <= p.activations);
        }
    }

    #[test]
    fn footprint_grows_with_every_dimension() {
        let base = footprint(&h1024(), &OptEffects::baseline()).total();
        for s in [
            LstmShape::new(1024, 2048, 3, 35, 128),
            LstmShape::new(1024, 1024, 4, 35, 128),
            LstmShape::new(1024, 1024, 3, 100, 128),
            LstmShape::new(1024, 1024, 3, 35, 256),
        ] {
            assert!(footprint(&s, &OptEffects::baseline()).total() > base);
        }
    }
}
