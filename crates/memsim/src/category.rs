use serde::{Deserialize, Serialize};
use std::fmt;

/// The three runtime-data categories the paper's characterization uses
/// (Figs. 4, 5, 17, 18): weight matrices, activation data, and the
/// forward-propagation intermediate variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataCategory {
    /// Weight matrices `W`, `U`, biases, and their gradients
    /// ("Parameter" in the paper's figures).
    Weights,
    /// Layer inputs/outputs `x_t`, `h_t` flowing between cells and layers.
    Activations,
    /// Forward intermediates `i_t, f_t, c_t, o_t, s_t` (or their MS1
    /// compressed replacements) stored for backpropagation.
    Intermediates,
}

impl DataCategory {
    /// All categories in display order.
    pub const ALL: [DataCategory; 3] = [
        DataCategory::Weights,
        DataCategory::Activations,
        DataCategory::Intermediates,
    ];

    /// Stable index in `[0, 3)` for array-backed per-category storage.
    pub fn index(self) -> usize {
        match self {
            DataCategory::Weights => 0,
            DataCategory::Activations => 1,
            DataCategory::Intermediates => 2,
        }
    }
}

impl fmt::Display for DataCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataCategory::Weights => "weights",
            DataCategory::Activations => "activations",
            DataCategory::Intermediates => "intermediates",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_unique_and_dense() {
        let mut seen = [false; 3];
        for c in DataCategory::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn display_names() {
        assert_eq!(DataCategory::Weights.to_string(), "weights");
        assert_eq!(DataCategory::Intermediates.to_string(), "intermediates");
    }
}
