//! # eta-memsim
//!
//! Memory footprint and DRAM data-movement accounting for the η-LSTM
//! reproduction.
//!
//! The paper's characterization (Sec. III, Figs. 4–5) splits LSTM training
//! memory into three categories — weight matrices ("Parameter"),
//! activation data, and intermediate variables — and shows the
//! intermediates dominate both footprint (47.18 % average) and DRAM
//! traffic (4.34× the activation traffic on average). This crate provides:
//!
//! - [`DataCategory`] — the three-way classification;
//! - [`MemoryTracker`] — live/peak footprint accounting used by the
//!   training framework's instrumentation;
//! - [`TrafficCounter`] — DRAM read/write byte counters per category;
//! - [`model`] — closed-form footprint/traffic models of baseline LSTM
//!   training and of the MS1/MS2-optimized flows, used by the figure
//!   harnesses that sweep model shapes too large to execute directly.
//!
//! # Example
//!
//! ```
//! use eta_memsim::{DataCategory, MemoryTracker};
//!
//! let mut t = MemoryTracker::new();
//! t.alloc(DataCategory::Intermediates, 1024);
//! t.alloc(DataCategory::Weights, 512);
//! t.free(DataCategory::Intermediates, 1024);
//! assert_eq!(t.live_total(), 512);
//! assert_eq!(t.peak_total(), 1536);
//! ```

pub mod model;

mod category;
mod tracker;
mod traffic;

pub use category::DataCategory;
pub use tracker::{MemoryTracker, SharedTracker};
pub use traffic::{SharedTraffic, TrafficCounter};
