//! Live/peak memory footprint accounting.

use crate::DataCategory;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Tracks live and peak bytes per [`DataCategory`].
///
/// The training framework calls [`MemoryTracker::alloc`] when a tensor is
/// materialized into simulated DRAM and [`MemoryTracker::free`] when it is
/// released; the tracker maintains the running total per category and the
/// peak of the *sum* (matching how the paper reports "memory footprint":
/// the high-water mark of GPU memory, Fig. 5).
///
/// # Example
///
/// ```
/// use eta_memsim::{DataCategory, MemoryTracker};
///
/// let mut t = MemoryTracker::new();
/// t.alloc(DataCategory::Activations, 100);
/// t.alloc(DataCategory::Intermediates, 300);
/// t.free(DataCategory::Activations, 100);
/// assert_eq!(t.peak_total(), 400);
/// assert_eq!(t.live(DataCategory::Intermediates), 300);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryTracker {
    live: [u64; 3],
    peak: [u64; 3],
    peak_total: u64,
}

impl MemoryTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation of `bytes` in `category`.
    pub fn alloc(&mut self, category: DataCategory, bytes: u64) {
        let i = category.index();
        self.live[i] += bytes;
        self.peak[i] = self.peak[i].max(self.live[i]);
        self.peak_total = self.peak_total.max(self.live_total());
    }

    /// Records a release of `bytes` in `category`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if more bytes are freed than are live
    /// (an accounting bug in the caller); saturates in release builds.
    pub fn free(&mut self, category: DataCategory, bytes: u64) {
        let i = category.index();
        debug_assert!(
            self.live[i] >= bytes,
            "freeing {bytes} bytes from {category} with only {} live",
            self.live[i]
        );
        self.live[i] = self.live[i].saturating_sub(bytes);
    }

    /// Currently-live bytes in one category.
    pub fn live(&self, category: DataCategory) -> u64 {
        self.live[category.index()]
    }

    /// Currently-live bytes across all categories.
    pub fn live_total(&self) -> u64 {
        self.live.iter().sum()
    }

    /// Peak live bytes ever seen in one category (each category's own
    /// high-water mark; these need not have occurred simultaneously).
    pub fn peak(&self, category: DataCategory) -> u64 {
        self.peak[category.index()]
    }

    /// Peak of the *total* live bytes — the footprint number the paper's
    /// Fig. 5 reports.
    pub fn peak_total(&self) -> u64 {
        self.peak_total
    }

    /// Resets live counts to zero but keeps peaks.
    pub fn release_all(&mut self) {
        self.live = [0; 3];
    }

    /// Resets everything to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// A cheaply-clonable, thread-safe handle to a [`MemoryTracker`], for
/// instrumentation shared between a model's layers.
#[derive(Debug, Clone, Default)]
pub struct SharedTracker(Arc<Mutex<MemoryTracker>>);

impl SharedTracker {
    /// Creates a handle around an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation. See [`MemoryTracker::alloc`].
    pub fn alloc(&self, category: DataCategory, bytes: u64) {
        self.0.lock().alloc(category, bytes);
    }

    /// Records a release. See [`MemoryTracker::free`].
    pub fn free(&self, category: DataCategory, bytes: u64) {
        self.0.lock().free(category, bytes);
    }

    /// Snapshot of the current tracker state.
    pub fn snapshot(&self) -> MemoryTracker {
        self.0.lock().clone()
    }

    /// Resets everything to zero.
    pub fn reset(&self) {
        self.0.lock().reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_total_tracks_concurrent_maximum() {
        let mut t = MemoryTracker::new();
        t.alloc(DataCategory::Weights, 10);
        t.alloc(DataCategory::Activations, 20);
        t.free(DataCategory::Weights, 10);
        t.alloc(DataCategory::Intermediates, 5);
        // peak was 30 (10+20), now live is 25
        assert_eq!(t.peak_total(), 30);
        assert_eq!(t.live_total(), 25);
    }

    #[test]
    fn per_category_peaks_are_independent() {
        let mut t = MemoryTracker::new();
        t.alloc(DataCategory::Weights, 10);
        t.free(DataCategory::Weights, 10);
        t.alloc(DataCategory::Activations, 7);
        assert_eq!(t.peak(DataCategory::Weights), 10);
        assert_eq!(t.peak(DataCategory::Activations), 7);
        assert_eq!(t.peak(DataCategory::Intermediates), 0);
    }

    #[test]
    fn release_all_keeps_peaks() {
        let mut t = MemoryTracker::new();
        t.alloc(DataCategory::Intermediates, 100);
        t.release_all();
        assert_eq!(t.live_total(), 0);
        assert_eq!(t.peak_total(), 100);
        t.reset();
        assert_eq!(t.peak_total(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "freeing")]
    fn over_free_panics_in_debug() {
        let mut t = MemoryTracker::new();
        t.free(DataCategory::Weights, 1);
    }

    #[test]
    fn shared_tracker_aggregates_across_clones() {
        let s = SharedTracker::new();
        let s2 = s.clone();
        s.alloc(DataCategory::Weights, 5);
        s2.alloc(DataCategory::Weights, 5);
        assert_eq!(s.snapshot().live(DataCategory::Weights), 10);
    }

    #[test]
    fn shared_tracker_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedTracker>();
    }
}
