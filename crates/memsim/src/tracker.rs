//! Live/peak memory footprint accounting.

use crate::DataCategory;
use eta_telemetry::{keys, Telemetry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Tracks live and peak bytes per [`DataCategory`].
///
/// The training framework calls [`MemoryTracker::alloc`] when a tensor is
/// materialized into simulated DRAM and [`MemoryTracker::free`] when it is
/// released; the tracker maintains the running total per category and the
/// peak of the *sum* (matching how the paper reports "memory footprint":
/// the high-water mark of GPU memory, Fig. 5).
///
/// # Example
///
/// ```
/// use eta_memsim::{DataCategory, MemoryTracker};
///
/// let mut t = MemoryTracker::new();
/// t.alloc(DataCategory::Activations, 100);
/// t.alloc(DataCategory::Intermediates, 300);
/// t.free(DataCategory::Activations, 100);
/// assert_eq!(t.peak_total(), 400);
/// assert_eq!(t.live(DataCategory::Intermediates), 300);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryTracker {
    live: [u64; 3],
    peak: [u64; 3],
    peak_total: u64,
}

/// Selects one category's slot out of a `[u64; 3]` by destructuring
/// instead of indexing, so the access is infallible by construction
/// (eta-lint P1 forbids bare slice indexing in library crates).
fn slot(cells: &mut [u64; 3], category: DataCategory) -> &mut u64 {
    let [weights, activations, intermediates] = cells;
    match category {
        DataCategory::Weights => weights,
        DataCategory::Activations => activations,
        DataCategory::Intermediates => intermediates,
    }
}

fn slot_ref(cells: &[u64; 3], category: DataCategory) -> u64 {
    let [weights, activations, intermediates] = cells;
    match category {
        DataCategory::Weights => *weights,
        DataCategory::Activations => *activations,
        DataCategory::Intermediates => *intermediates,
    }
}

impl MemoryTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation of `bytes` in `category`.
    pub fn alloc(&mut self, category: DataCategory, bytes: u64) {
        let live = slot(&mut self.live, category);
        *live += bytes;
        let live = *live;
        let peak = slot(&mut self.peak, category);
        *peak = (*peak).max(live);
        self.peak_total = self.peak_total.max(self.live_total());
    }

    /// Records a release of `bytes` in `category`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if more bytes are freed than are live
    /// (an accounting bug in the caller); saturates in release builds.
    pub fn free(&mut self, category: DataCategory, bytes: u64) {
        let live = slot(&mut self.live, category);
        debug_assert!(
            *live >= bytes,
            "freeing {bytes} bytes from {category} with only {live} live"
        );
        *live = live.saturating_sub(bytes);
    }

    /// Currently-live bytes in one category.
    pub fn live(&self, category: DataCategory) -> u64 {
        slot_ref(&self.live, category)
    }

    /// Currently-live bytes across all categories.
    pub fn live_total(&self) -> u64 {
        self.live.iter().sum()
    }

    /// Peak live bytes ever seen in one category (each category's own
    /// high-water mark; these need not have occurred simultaneously).
    pub fn peak(&self, category: DataCategory) -> u64 {
        slot_ref(&self.peak, category)
    }

    /// Peak of the *total* live bytes — the footprint number the paper's
    /// Fig. 5 reports.
    pub fn peak_total(&self) -> u64 {
        self.peak_total
    }

    /// Resets live counts to zero but keeps peaks.
    pub fn release_all(&mut self) {
        self.live = [0; 3];
    }

    /// Resets everything to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Cumulative alloc/free byte totals per category, plus the high-water
/// mark of what has already been published to telemetry (so repeated
/// publishes emit counter *deltas*, not re-counts).
#[derive(Debug, Default)]
struct TrackerMirror {
    allocated: [u64; 3],
    freed: [u64; 3],
    published_alloc: [u64; 3],
    published_free: [u64; 3],
}

/// A cheaply-clonable, thread-safe handle to a [`MemoryTracker`], for
/// instrumentation shared between a model's layers.
///
/// With a [`Telemetry`] handle attached ([`SharedTracker::with_telemetry`])
/// alloc/free totals are mirrored into the metric registry as
/// `memsim_alloc_bytes_total{category}` / `memsim_free_bytes_total{category}`
/// counters plus the `memsim_live_bytes{category}` and
/// `memsim_peak_total_bytes` gauges. The hot path only accumulates;
/// registry writes happen at [`SharedTracker::publish`] — which
/// [`SharedTracker::snapshot`] calls — keeping the per-event cost to one
/// uncontended add (see the `telemetry_overhead` benchmark guard).
#[derive(Debug, Clone, Default)]
pub struct SharedTracker {
    // SYNC: telemetry plumbing only — allocation accounting feeds
    // dashboards, never numeric state, so lock acquisition order is
    // unobservable to the training math.
    tracker: Arc<Mutex<MemoryTracker>>,
    telemetry: Option<Telemetry>,
    mirror: Arc<Mutex<TrackerMirror>>, // SYNC: telemetry mirror (see above)
}

impl SharedTracker {
    /// Creates a handle around an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a handle that mirrors alloc/free totals into `telemetry`
    /// on every [`SharedTracker::publish`]/[`SharedTracker::snapshot`].
    pub fn with_telemetry(telemetry: Telemetry) -> Self {
        SharedTracker {
            tracker: Arc::default(),
            telemetry: Some(telemetry),
            mirror: Arc::default(),
        }
    }

    /// Records an allocation. See [`MemoryTracker::alloc`].
    pub fn alloc(&self, category: DataCategory, bytes: u64) {
        self.tracker.lock().alloc(category, bytes);
        if self.telemetry.is_some() {
            *slot(&mut self.mirror.lock().allocated, category) += bytes;
        }
    }

    /// Records a release. See [`MemoryTracker::free`].
    pub fn free(&self, category: DataCategory, bytes: u64) {
        self.tracker.lock().free(category, bytes);
        if self.telemetry.is_some() {
            *slot(&mut self.mirror.lock().freed, category) += bytes;
        }
    }

    /// Pushes the accumulated totals into the attached telemetry (a
    /// no-op without one): counter deltas since the last publish plus
    /// the current live/peak gauges.
    pub fn publish(&self) {
        let Some(t) = &self.telemetry else {
            return;
        };
        let deltas: Vec<(DataCategory, u64, u64)> = {
            let mut m = self.mirror.lock();
            DataCategory::ALL
                .into_iter()
                .map(|c| {
                    let total_alloc = slot_ref(&m.allocated, c);
                    let total_free = slot_ref(&m.freed, c);
                    let alloc = total_alloc - slot_ref(&m.published_alloc, c);
                    let free = total_free - slot_ref(&m.published_free, c);
                    *slot(&mut m.published_alloc, c) = total_alloc;
                    *slot(&mut m.published_free, c) = total_free;
                    (c, alloc, free)
                })
                .collect()
        };
        let snap = self.tracker.lock().clone();
        for (category, alloc, free) in deltas {
            if alloc > 0 {
                t.incr_with(
                    keys::MEMSIM_ALLOC_BYTES_TOTAL,
                    category_labels(category),
                    alloc,
                );
            }
            if free > 0 {
                t.incr_with(
                    keys::MEMSIM_FREE_BYTES_TOTAL,
                    category_labels(category),
                    free,
                );
            }
            t.gauge_with(
                keys::MEMSIM_LIVE_BYTES,
                category_labels(category),
                snap.live(category) as f64,
            );
        }
        t.gauge(keys::MEMSIM_PEAK_TOTAL_BYTES, snap.peak_total() as f64);
    }

    /// Snapshot of the current tracker state; also publishes the
    /// telemetry mirror (snapshots are the natural aggregation points).
    pub fn snapshot(&self) -> MemoryTracker {
        self.publish();
        self.tracker.lock().clone()
    }

    /// Resets everything to zero (and the publish marks with it).
    pub fn reset(&self) {
        self.tracker.lock().reset();
        *self.mirror.lock() = TrackerMirror::default();
    }
}

fn category_labels(category: DataCategory) -> eta_telemetry::Labels {
    eta_telemetry::labels!(category = category)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_total_tracks_concurrent_maximum() {
        let mut t = MemoryTracker::new();
        t.alloc(DataCategory::Weights, 10);
        t.alloc(DataCategory::Activations, 20);
        t.free(DataCategory::Weights, 10);
        t.alloc(DataCategory::Intermediates, 5);
        // peak was 30 (10+20), now live is 25
        assert_eq!(t.peak_total(), 30);
        assert_eq!(t.live_total(), 25);
    }

    #[test]
    fn per_category_peaks_are_independent() {
        let mut t = MemoryTracker::new();
        t.alloc(DataCategory::Weights, 10);
        t.free(DataCategory::Weights, 10);
        t.alloc(DataCategory::Activations, 7);
        assert_eq!(t.peak(DataCategory::Weights), 10);
        assert_eq!(t.peak(DataCategory::Activations), 7);
        assert_eq!(t.peak(DataCategory::Intermediates), 0);
    }

    #[test]
    fn release_all_keeps_peaks() {
        let mut t = MemoryTracker::new();
        t.alloc(DataCategory::Intermediates, 100);
        t.release_all();
        assert_eq!(t.live_total(), 0);
        assert_eq!(t.peak_total(), 100);
        t.reset();
        assert_eq!(t.peak_total(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "freeing")]
    fn over_free_panics_in_debug() {
        let mut t = MemoryTracker::new();
        t.free(DataCategory::Weights, 1);
    }

    #[test]
    fn shared_tracker_aggregates_across_clones() {
        let s = SharedTracker::new();
        let s2 = s.clone();
        s.alloc(DataCategory::Weights, 5);
        s2.alloc(DataCategory::Weights, 5);
        assert_eq!(s.snapshot().live(DataCategory::Weights), 10);
    }

    #[test]
    fn shared_tracker_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedTracker>();
    }
}
