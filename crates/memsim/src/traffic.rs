//! DRAM data-movement accounting.

use crate::DataCategory;
use eta_telemetry::{keys, Telemetry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Counts bytes moved between on-chip memory and DRAM, split by
/// [`DataCategory`] and direction.
///
/// The paper's Fig. 4 reports "data movement" — total GB transferred to
/// and from DRAM per training iteration — and Fig. 17 reports the
/// reduction the memory-saving optimizations achieve per category. The
/// training framework's simulated-DRAM boundary calls
/// [`TrafficCounter::read`]/[`TrafficCounter::write`] whenever a tensor
/// crosses it.
///
/// # Example
///
/// ```
/// use eta_memsim::{DataCategory, TrafficCounter};
///
/// let mut t = TrafficCounter::new();
/// t.write(DataCategory::Intermediates, 100);
/// t.read(DataCategory::Intermediates, 250);
/// assert_eq!(t.total(DataCategory::Intermediates), 350);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficCounter {
    reads: [u64; 3],
    writes: [u64; 3],
}

/// Selects one category's slot out of a `[u64; 3]` by destructuring
/// instead of indexing, so the access is infallible by construction
/// (eta-lint P1 forbids bare slice indexing in library crates).
fn slot(cells: &mut [u64; 3], category: DataCategory) -> &mut u64 {
    let [weights, activations, intermediates] = cells;
    match category {
        DataCategory::Weights => weights,
        DataCategory::Activations => activations,
        DataCategory::Intermediates => intermediates,
    }
}

fn slot_ref(cells: &[u64; 3], category: DataCategory) -> u64 {
    let [weights, activations, intermediates] = cells;
    match category {
        DataCategory::Weights => *weights,
        DataCategory::Activations => *activations,
        DataCategory::Intermediates => *intermediates,
    }
}

impl TrafficCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` read from DRAM.
    pub fn read(&mut self, category: DataCategory, bytes: u64) {
        *slot(&mut self.reads, category) += bytes;
    }

    /// Records `bytes` written to DRAM.
    pub fn write(&mut self, category: DataCategory, bytes: u64) {
        *slot(&mut self.writes, category) += bytes;
    }

    /// Bytes read from DRAM for one category.
    pub fn reads(&self, category: DataCategory) -> u64 {
        slot_ref(&self.reads, category)
    }

    /// Bytes written to DRAM for one category.
    pub fn writes(&self, category: DataCategory) -> u64 {
        slot_ref(&self.writes, category)
    }

    /// Reads + writes for one category.
    pub fn total(&self, category: DataCategory) -> u64 {
        self.reads(category) + self.writes(category)
    }

    /// Reads + writes across all categories.
    pub fn grand_total(&self) -> u64 {
        self.reads.iter().sum::<u64>() + self.writes.iter().sum::<u64>()
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &TrafficCounter) {
        for category in DataCategory::ALL {
            *slot(&mut self.reads, category) += slot_ref(&other.reads, category);
            *slot(&mut self.writes, category) += slot_ref(&other.writes, category);
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Read/write byte totals already published to telemetry, so repeated
/// publishes emit counter deltas.
#[derive(Debug, Default)]
struct TrafficMirror {
    published_reads: [u64; 3],
    published_writes: [u64; 3],
}

/// Thread-safe shared handle to a [`TrafficCounter`].
///
/// With a [`Telemetry`] handle attached ([`SharedTraffic::with_telemetry`])
/// transfer totals are mirrored as the `dram_read_bytes_total{category}` /
/// `dram_write_bytes_total{category}` counters. The hot path only
/// accumulates into the [`TrafficCounter`]; registry writes happen at
/// [`SharedTraffic::publish`] — which [`SharedTraffic::snapshot`] calls.
#[derive(Debug, Clone, Default)]
pub struct SharedTraffic {
    // SYNC: telemetry plumbing only — byte counters feed dashboards,
    // never numeric state, so lock acquisition order is unobservable
    // to the training math.
    counter: Arc<Mutex<TrafficCounter>>,
    telemetry: Option<Telemetry>,
    mirror: Arc<Mutex<TrafficMirror>>, // SYNC: telemetry mirror (see above)
}

impl SharedTraffic {
    /// Creates a handle around a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a handle that mirrors transfer totals into `telemetry`
    /// on every [`SharedTraffic::publish`]/[`SharedTraffic::snapshot`].
    pub fn with_telemetry(telemetry: Telemetry) -> Self {
        SharedTraffic {
            counter: Arc::default(),
            telemetry: Some(telemetry),
            mirror: Arc::default(),
        }
    }

    /// Records a DRAM read. See [`TrafficCounter::read`].
    pub fn read(&self, category: DataCategory, bytes: u64) {
        self.counter.lock().read(category, bytes);
    }

    /// Records a DRAM write. See [`TrafficCounter::write`].
    pub fn write(&self, category: DataCategory, bytes: u64) {
        self.counter.lock().write(category, bytes);
    }

    /// Pushes the accumulated totals into the attached telemetry as
    /// counter deltas since the last publish (a no-op without one).
    pub fn publish(&self) {
        let Some(t) = &self.telemetry else {
            return;
        };
        let snap = self.counter.lock().clone();
        let mut m = self.mirror.lock();
        for category in DataCategory::ALL {
            let reads = snap.reads(category) - slot_ref(&m.published_reads, category);
            let writes = snap.writes(category) - slot_ref(&m.published_writes, category);
            *slot(&mut m.published_reads, category) = snap.reads(category);
            *slot(&mut m.published_writes, category) = snap.writes(category);
            if reads > 0 {
                t.incr_with(
                    keys::DRAM_READ_BYTES_TOTAL,
                    eta_telemetry::labels!(category = category),
                    reads,
                );
            }
            if writes > 0 {
                t.incr_with(
                    keys::DRAM_WRITE_BYTES_TOTAL,
                    eta_telemetry::labels!(category = category),
                    writes,
                );
            }
        }
    }

    /// Snapshot of the current counters; also publishes the telemetry
    /// mirror (snapshots are the natural aggregation points).
    pub fn snapshot(&self) -> TrafficCounter {
        self.publish();
        self.counter.lock().clone()
    }

    /// Resets all counters to zero (and the publish marks with them).
    pub fn reset(&self) {
        self.counter.lock().reset();
        *self.mirror.lock() = TrafficMirror::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_reads_and_writes() {
        let mut t = TrafficCounter::new();
        t.read(DataCategory::Weights, 10);
        t.write(DataCategory::Weights, 3);
        t.read(DataCategory::Activations, 5);
        assert_eq!(t.total(DataCategory::Weights), 13);
        assert_eq!(t.grand_total(), 18);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TrafficCounter::new();
        a.read(DataCategory::Intermediates, 7);
        let mut b = TrafficCounter::new();
        b.write(DataCategory::Intermediates, 2);
        a.merge(&b);
        assert_eq!(a.total(DataCategory::Intermediates), 9);
    }

    #[test]
    fn reset_zeroes() {
        let mut t = TrafficCounter::new();
        t.write(DataCategory::Weights, 4);
        t.reset();
        assert_eq!(t.grand_total(), 0);
    }

    #[test]
    fn shared_traffic_aggregates() {
        let s = SharedTraffic::new();
        s.clone().write(DataCategory::Activations, 6);
        s.read(DataCategory::Activations, 1);
        assert_eq!(s.snapshot().total(DataCategory::Activations), 7);
    }
}
