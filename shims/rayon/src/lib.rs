//! In-tree, offline stand-in for the `rayon` crate.
//!
//! Implements the structured-parallelism subset this workspace uses —
//! [`scope`]/[`Scope::spawn`], [`join`], and [`current_num_threads`] —
//! over `std::thread::scope` (stable since 1.63). Unlike real rayon
//! there is no global work-stealing pool: every `spawn` is an OS
//! thread, so callers are expected to spawn one long-lived task per
//! worker (the `eta-parallel` kernels partition work into per-thread
//! panels before spawning, which is also what keeps their results
//! deterministic).

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::thread as std_thread;

/// Debug-build ceiling on spawns per scope. Real rayon multiplexes any
/// number of tasks onto its fixed pool, but the shim backs every spawn
/// with an OS thread, so a caller that spawns per *item* instead of per
/// *worker* degrades quietly — thousands of threads instead of a
/// handful. The engine's contract is one long-lived task per worker
/// (`workers <= current_num_threads()`); the cap enforces that shape
/// with headroom: `current_num_threads().max(SPAWN_CAP_FLOOR)` keeps
/// small CI machines and the shim's own fan-out tests from tripping
/// while still catching per-item spawning at real workloads.
const SPAWN_CAP_FLOOR: usize = 128;

fn spawn_cap() -> usize {
    current_num_threads().max(SPAWN_CAP_FLOOR)
}

/// Number of threads the machine can usefully run concurrently
/// (rayon reports its pool size here; the shim reports the hardware's
/// available parallelism, falling back to 1 when unknown).
pub fn current_num_threads() -> usize {
    std_thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Scope handle passed to [`scope`]'s closure and to each spawned
/// closure (rayon passes the scope so children can spawn siblings).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std_thread::Scope<'scope, 'env>,
    /// Spawns issued from this handle (each nested handle counts its
    /// own children — the cap bounds fan-out per spawning thread,
    /// which is what turns into simultaneous OS threads here).
    spawned: Cell<usize>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task in the scope. Matches rayon's fire-and-forget
    /// signature: no join handle, the task's result is discarded, and
    /// [`scope`] does not return until every spawned task finishes.
    ///
    /// # Panics
    ///
    /// In debug builds, panics when one handle issues more than
    /// `current_num_threads().max(128)` spawns — the shim backs every
    /// spawn with an OS thread, so per-item spawning (instead of the
    /// engine's one-task-per-worker partitioning) must fail loudly
    /// rather than silently oversubscribe the machine.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let n = self.spawned.get() + 1;
        self.spawned.set(n);
        debug_assert!(
            n <= spawn_cap(),
            "{n} spawns from one scope handle exceeds the shim cap of {} \
             (one OS thread per spawn): partition work per worker, not per item",
            spawn_cap()
        );
        let inner = self.inner;
        inner.spawn(move || {
            f(&Scope {
                inner,
                spawned: Cell::new(0),
            })
        });
    }
}

/// Creates a scope in which tasks borrowing from the environment can be
/// spawned; all tasks are joined before `scope` returns. A panic in any
/// spawned task propagates to the caller when the scope joins, matching
/// rayon's contract.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std_thread::scope(|s| {
        f(&Scope {
            inner: s,
            spawned: Cell::new(0),
        })
    })
}

/// Runs both closures, potentially in parallel, and returns both
/// results. The shim runs `a` on a scoped worker thread and `b` on the
/// calling thread; a panic in either propagates.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std_thread::scope(|s| {
        let ha = s.spawn(a);
        let rb = b();
        let ra = ha.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::SeqCst);
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds the shim cap")]
    fn spawn_cap_trips_on_per_item_spawning() {
        let cap = super::spawn_cap();
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..=cap {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
    }

    #[test]
    fn scope_borrows_mutable_disjoint_chunks() {
        let mut data = [0u32; 16];
        scope(|s| {
            for chunk in data.chunks_mut(4) {
                s.spawn(move |_| {
                    for v in chunk {
                        *v += 1;
                    }
                });
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }
}
