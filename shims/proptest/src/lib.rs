//! In-tree, offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: range strategies, tuple
//! strategies, `collection::vec`, `bool::ANY`, `prop_map` /
//! `prop_flat_map`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros. Cases are generated from a fixed seed so
//! runs are deterministic; there is no shrinking — failures report the
//! case index instead of a minimized input.

use rand::Rng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// RNG used to generate test cases.
pub type TestRng = rand::StdRng;

/// Error produced by a failing `prop_assert!` inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps single-core CI fast while
        // still exercising the properties.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.erased_generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H)
);

/// `Vec` strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a
    /// half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a strategy for vectors of `element` with length in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Strategy instance generating uniform booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

/// Always-generates-the-same-value strategy.
pub struct JustStrategy<T: Clone>(pub T);

impl<T: Clone> Strategy for JustStrategy<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Constructs a strategy that always yields `value`.
#[allow(non_snake_case)]
pub fn Just<T: Clone>(value: T) -> JustStrategy<T> {
    JustStrategy(value)
}

#[doc(hidden)]
pub mod __runtime {
    use super::{ProptestConfig, TestCaseError, TestRng};
    use rand::SeedableRng;

    /// Fixed base seed; combined with the test name so distinct tests
    /// see distinct streams while staying reproducible.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }

    pub fn report(test_name: &str, case: u32, config: &ProptestConfig, err: &TestCaseError) -> ! {
        panic!(
            "proptest `{test_name}` failed at case {case}/{cases}: {err}",
            cases = config.cases
        );
    }
}

/// Defines deterministic property tests.
///
/// Supports the standard form: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::__proptest_run_cases!(config, $name, ($($p),+), ($($s),+), $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($p in $s),+) $body
            )*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run_cases {
    ($config:ident, $name:ident, ($($p:pat),+), ($($s:expr),+), $body:block) => {{
        let strategies = ($($s,)+);
        let mut rng = $crate::__runtime::rng_for(stringify!($name));
        for case in 0..$config.cases {
            let ($($p,)+) = $crate::Strategy::generate(&strategies, &mut rng);
            let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                $body
                #[allow(unreachable_code)]
                ::std::result::Result::Ok(())
            })();
            if let ::std::result::Result::Err(e) = outcome {
                $crate::__runtime::report(stringify!($name), case, &$config, &e);
            }
        }
    }};
}

/// Fails the surrounding proptest case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the surrounding proptest case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::Just;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, BoxedStrategy, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_within_bounds() {
        let mut rng = crate::__runtime::rng_for("ranges");
        for _ in 0..100 {
            let v = (2usize..8).generate(&mut rng);
            assert!((2..8).contains(&v));
            let f = (-10.0f32..10.0).generate(&mut rng);
            assert!((-10.0..10.0).contains(&f));
            let i = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_respects_size_spec() {
        let mut rng = crate::__runtime::rng_for("vec");
        let exact = crate::collection::vec(0.0f32..1.0, 6).generate(&mut rng);
        assert_eq!(exact.len(), 6);
        for _ in 0..50 {
            let ranged = crate::collection::vec(0u64..9, 0..5).generate(&mut rng);
            assert!(ranged.len() < 5);
        }
    }

    #[test]
    fn adapters_compose() {
        let strat = (1usize..4, 1usize..4)
            .prop_flat_map(|(r, c)| {
                crate::collection::vec(0.0f32..1.0, r * c).prop_map(move |v| (r, c, v))
            })
            .prop_map(|(r, c, v)| (r * c, v.len()));
        let mut rng = crate::__runtime::rng_for("adapters");
        for _ in 0..50 {
            let (expect, got) = strat.generate(&mut rng);
            assert_eq!(expect, got);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u64..10, 0u64..10), flip in crate::bool::ANY) {
            let sum = if flip { a + b } else { a.max(b) + a.min(b) };
            prop_assert_eq!(sum, a + b);
            prop_assert!(sum < 20, "sum {} out of range", sum);
        }
    }
}
