//! `#[derive(Serialize, Deserialize)]` for the in-tree serde shim.
//!
//! The build environment has no registry access, so `syn`/`quote` are
//! unavailable; this crate parses the item declaration directly from
//! the raw [`proc_macro::TokenStream`] and emits impl blocks as
//! generated source text. Supported shapes (everything the workspace
//! derives on):
//!
//! - structs with named fields,
//! - tuple structs (newtypes serialize transparently),
//! - unit structs,
//! - enums with unit, tuple, and struct variants (externally tagged,
//!   matching serde's default representation).
//!
//! Generics and `#[serde(...)]` attributes are intentionally
//! unsupported and produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde shim derive: malformed struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde shim derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Skips leading `#[...]` attributes and a `pub` / `pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Advances past a type expression up to (not including) the next
/// top-level `,`, tracking `<...>` nesting.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(field)) = tokens.get(i) else {
            break;
        };
        fields.push(field.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field name, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
        i += 1; // the ',' itself (or past the end)
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        i += 1; // ','
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing ','.
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "entries.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Map(entries)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                // Newtype structs serialize transparently, as in serde.
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|n| format!("::serde::Serialize::to_value(&self.{n})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Serialize::to_value(f0))]),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                                 ::serde::Value::Seq(vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                                 ::serde::Value::Map(vec![{}]))]),\n",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let gets: Vec<String> = (0..*arity)
                    .map(|n| {
                        format!(
                            "::serde::Deserialize::from_value(items.get({n}).ok_or_else(|| \
                             ::serde::DeError(\"tuple struct too short\".to_string()))?)?"
                        )
                    })
                    .collect();
                format!(
                    "match v {{\n\
                         ::serde::Value::Seq(items) => Ok({name}({})),\n\
                         other => Err(::serde::DeError::expected(\"sequence\", other)),\n\
                     }}",
                    gets.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                     Ok({name})\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => return Ok({name}::{vn}),\n")
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(payload)?)),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::from_value(items.get({k}).ok_or_else(|| \
                                         ::serde::DeError(\"variant tuple too short\".to_string()))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let ::serde::Value::Seq(items) = payload else {{\n\
                                         return Err(::serde::DeError::expected(\"sequence\", payload));\n\
                                     }};\n\
                                     return Ok({name}::{vn}({}));\n\
                                 }}\n",
                                gets.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(payload.field(\"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => return Ok({name}::{vn} {{ {} }}),\n",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::serde::Value::Str(tag) = v {{\n\
                             match tag.as_str() {{\n\
                                 {unit_arms}\
                                 _ => {{}}\n\
                             }}\n\
                         }}\n\
                         if let ::serde::Value::Map(entries) = v {{\n\
                             if entries.len() == 1 {{\n\
                                 let (tag, payload) = (&entries[0].0, &entries[0].1);\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\
                                     _ => {{}}\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::DeError(format!(\
                             \"no variant of {name} matches {{}}\", v.kind())))\n\
                     }}\n\
                 }}"
            )
        }
    }
}
