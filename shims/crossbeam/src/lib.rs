//! In-tree, offline stand-in for the `crossbeam` crate.
//!
//! Only scoped threads are provided, implemented over
//! `std::thread::scope` (stable since 1.63) behind crossbeam's
//! closure-takes-scope API.

pub mod thread {
    use std::any::Any;
    use std::thread as std_thread;

    /// Scope handle passed to [`scope`]'s closure and to each spawned
    /// closure (crossbeam passes the scope so children can spawn).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope,
        /// matching crossbeam's signature (`move |_| ...`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Creates a scope in which threads borrowing from the environment
    /// can be spawned; all are joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the panic payload if any spawned thread (or
    /// the closure itself) panicked, matching crossbeam's contract of
    /// not propagating child panics implicitly.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std_thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mid = data.len() / 2;
        let (lo, hi) = data.split_at(mid);
        let total = crate::thread::scope(|scope| {
            let a = scope.spawn(move |_| lo.iter().sum::<u64>());
            let b = scope.spawn(move |_| hi.iter().sum::<u64>());
            a.join().unwrap() + b.join().unwrap()
        })
        .expect("scope should succeed");
        assert_eq!(total, 10);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
