//! In-tree, offline stand-in for the `rand` crate.
//!
//! Provides the subset of the rand 0.8 API this workspace uses:
//! `StdRng::seed_from_u64`, `rng.gen::<T>()`, and `rng.gen_range(a..b)`.
//! `StdRng` is a xoshiro256++ generator seeded via splitmix64 — fast,
//! deterministic, and statistically solid for simulation workloads.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seedable generator interface.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns a uniformly random value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types drawable from the standard uniform distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = sample_below(rng, span);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = sample_below(rng, span);
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit: $t = Standard::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Unbiased sampling of a value in `[0, span)` via rejection.
fn sample_below<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Draw 64-bit words; spans here always fit in u64 (workspace uses
    // half-open usize/int ranges well below 2^64).
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX % span64);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return (v % span64) as u128;
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's
    /// ChaCha-based `StdRng`; same API, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as rand_core does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

/// Prelude matching the real crate's common imports.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(0usize..5);
            assert!(v < 5);
            seen[v] = true;
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&i));
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }
}
