//! In-tree, offline stand-in for the `criterion` crate.
//!
//! Implements the group/bench-function API surface this workspace uses
//! with a plain wall-clock harness: per benchmark it calibrates an
//! inner iteration count, takes `sample_size` samples, and prints
//! min/mean/max. No plotting, no statistics beyond the summary line.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per sample; keeps total runtime bounded on slow
/// single-core machines while still averaging over noise.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Identifier combining a function name with a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            mode: Mode::Calibrate,
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibrate: grow the inner iteration count until one sample
        // takes at least SAMPLE_TARGET.
        loop {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if bencher.elapsed >= SAMPLE_TARGET || bencher.iters >= 1 << 20 {
                break;
            }
            bencher.iters *= 2;
        }
        bencher.mode = Mode::Measure;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "  {group}/{id}: mean {mean} min {min} max {max} ({n} samples x {iters} iters)",
            group = self.name,
            mean = fmt_time(mean),
            min = fmt_time(min),
            max = fmt_time(max),
            n = samples.len(),
            iters = bencher.iters,
        );
    }
}

enum Mode {
    Calibrate,
    Measure,
}

/// Per-benchmark timing handle passed to the closure.
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times for a stable sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let _ = &self.mode; // calibrate and measure share the loop
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares the benchmark entry list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("increment", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, &n| b.iter(|| n + 1));
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("nn", 128).to_string(), "nn/128");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
