//! In-tree, offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's panic-free API:
//! `lock()` returns a guard directly (recovering from poisoning, which
//! parking_lot does not track at all).

use std::fmt;
use std::sync::{self, MutexGuard as StdGuard};

/// Mutex with parking_lot's non-poisoning `lock()` signature.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning — the poisoned state is discarded, matching
    /// parking_lot semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Guard type alias; std's guard already derefs to `T`.
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn survives_poisoning() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() = 9;
        assert_eq!(*m.lock(), 9);
    }
}
