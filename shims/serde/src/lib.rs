//! In-tree, offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no vendored
//! registry, so the workspace provides a minimal serialization
//! framework under the same crate name. It supports the subset the
//! repository uses: `#[derive(Serialize, Deserialize)]` on structs and
//! enums (via the sibling `serde_derive` shim) plus JSON encoding
//! through the `serde_json` shim.
//!
//! Unlike real serde's visitor architecture, this shim round-trips
//! everything through an owned [`Value`] tree: `Serialize` renders a
//! value into a [`Value`], `Deserialize` rebuilds one from it. That is
//! slower than real serde but entirely sufficient for checkpointing,
//! telemetry streams, and tests.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A dynamically-typed serialization tree (the serde data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative numbers).
    Int(i64),
    /// Unsigned integer (non-negative integers).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-value map with preserved insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required struct field, with a descriptive error.
    pub fn field(&self, key: &str) -> Result<&Value, DeError> {
        self.get(key)
            .ok_or_else(|| DeError(format!("missing field `{key}`")))
    }

    /// Human-readable name of the value's variant (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Numeric view accepting any of the three number variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::UInt(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds a type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a serialization tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a serialization tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 => *f as u64,
                    _ => return Err(DeError::expected("unsigned integer", v)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of i64 range")))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::expected("number", v))
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the decoded string to satisfy the `'static` lifetime.
    /// Derived types holding `&'static str` (benchmark spec tables)
    /// deserialize rarely — during checkpoint restore and tests — so
    /// the leak is bounded and intentional.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("sequence", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = <Vec<T>>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($({
                            let _ = $n;
                            $t::from_value(
                                it.next().ok_or_else(|| DeError("tuple too short".into()))?,
                            )?
                        },)+);
                        Ok(out)
                    }
                    _ => Err(DeError::expected("tuple sequence", v)),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("map", v)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("map", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn floats_accept_integer_values() {
        // JSON writes 1.0 as "1", which parses back as UInt.
        assert_eq!(f64::from_value(&Value::UInt(3)).unwrap(), 3.0);
        assert_eq!(f32::from_value(&Value::Int(-2)).unwrap(), -2.0);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(<Vec<u64>>::from_value(&v.to_value()).unwrap(), v);
        let arr = [5u64, 6, 7];
        assert_eq!(<[u64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<u32> = None;
        assert_eq!(<Option<u32>>::from_value(&opt.to_value()).unwrap(), None);
        let pair = (1u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn field_lookup_reports_missing_keys() {
        let m = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert!(m.field("a").is_ok());
        assert!(m.field("b").unwrap_err().0.contains("missing field"));
    }
}
