//! In-tree, offline stand-in for the `serde_json` crate.
//!
//! Encodes the serde shim's [`Value`] tree as JSON text and parses it
//! back. Supports everything the workspace round-trips: checkpoints,
//! telemetry JSONL streams, and tests.

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;
pub use serde::Value as JsonValue;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Alias matching the real crate's result type.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` to a human-readable, indented JSON string.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses a JSON string into `T`.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("non-finite float {f} is not valid JSON")));
            }
            // `{}` on f64 never prints an exponent for ordinary values
            // and always round-trips; integral floats get a ".0" so they
            // parse back as floats.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(n * depth));
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of JSON input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        let got = self.peek()?;
        if got != b {
            return Err(Error(format!(
                "expected `{}` at byte {}, got `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("invalid token at byte {}", self.pos)))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error(format!("invalid token at byte {}", self.pos)))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error(format!("invalid token at byte {}", self.pos)))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        c => {
                            return Err(Error(format!(
                                "expected `,` or `]` at byte {}, got `{}`",
                                self.pos, c as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        c => {
                            return Err(Error(format!(
                                "expected `,` or `}}` at byte {}, got `{}`",
                                self.pos, c as char
                            )))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Continue collecting a (possibly multi-byte) UTF-8
                    // character directly from the source.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| Error("truncated UTF-8 sequence".into()))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error("invalid UTF-8".into()))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() {
            return Err(Error(format!("expected a value at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                // Very large integers fall back to floats, as serde_json
                // does with `arbitrary_precision` disabled.
                .or_else(|_| {
                    text.parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| Error(format!("invalid number `{text}`")))
                })
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let cases = [
            Value::Null,
            Value::Bool(true),
            Value::UInt(42),
            Value::Int(-7),
            Value::Float(1.5),
            Value::Str("hi \"there\"\n".into()),
        ];
        for v in cases {
            let text = to_string(&v).unwrap();
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "through {text}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = to_string(&Value::Float(2.0)).unwrap();
        assert_eq!(text, "2.0");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, Value::Float(2.0));
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::UInt(1), Value::Null])),
            (
                "b".into(),
                Value::Map(vec![("c".into(), Value::Float(-0.25))]),
            ),
        ]);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<f64> = vec![1.0, 2.5, -3.0];
        let text = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&Value::Float(f64::NAN)).is_err());
    }

    #[test]
    fn unicode_round_trips() {
        let v = Value::Str("η-LSTM ✓".into());
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
