//! Bit-identity contract of the packed kernel layer (PR satellite):
//! routing training through the register-blocked packed GEMMs, the
//! cached weight panels, and the reusable zero-alloc workspace must not
//! change a single bit of the loss trajectory. The packed microkernel
//! keeps one accumulator per output element and ascending-k order, so
//! it is bitwise equal to the naive triple loop; the panel cache only
//! changes *when* weights are packed, never the arithmetic; and the
//! workspace only recycles buffers that are fully overwritten.

use eta_lstm::core::parallel::Parallelism;
use eta_lstm::core::{LstmConfig, Trainer, TrainingStrategy};
use eta_lstm::tensor::ParallelConfig;
use eta_lstm::workloads::SyntheticTask;

fn config() -> LstmConfig {
    LstmConfig::builder()
        .input_size(12)
        .hidden_size(16)
        .layers(2)
        .seq_len(12)
        .batch_size(8)
        .output_size(4)
        .build()
        .expect("valid config")
}

fn task() -> SyntheticTask {
    SyntheticTask::classification(12, 4, 12, 3).with_batch_size(8)
}

/// Runs four epochs with the kernel layer forced into a given regime
/// and returns the per-epoch mean losses plus the final loss.
fn run_with_kernel(strategy: TrainingStrategy, kernel: ParallelConfig) -> Vec<f64> {
    let mut par = Parallelism::serial();
    par.kernel = kernel;
    let mut trainer = Trainer::new(config(), strategy, 42)
        .expect("trainer")
        .with_parallelism(par);
    let report = trainer.run(&task(), 4).expect("training");
    let mut losses: Vec<f64> = report.epochs.iter().map(|e| e.mean_loss).collect();
    losses.push(report.final_loss());
    losses
}

#[test]
fn packed_kernels_are_bit_identical_across_thread_counts_and_dispatch() {
    for strategy in [TrainingStrategy::Baseline, TrainingStrategy::CombinedMs] {
        // Serial dispatch: small shapes take the naive path, large ones
        // the packed path — the seed trajectory of this workspace.
        let reference = run_with_kernel(strategy, ParallelConfig::serial());
        assert!(reference.iter().all(|l| l.is_finite()));

        // Force EVERY matmul through the packed register-blocked
        // kernels, at one and at four kernel threads.
        for threads in [1usize, 4] {
            let mut kernel = ParallelConfig::with_threads(threads);
            kernel.min_kernel_flops = 1;
            let losses = run_with_kernel(strategy, kernel);
            assert_eq!(reference.len(), losses.len());
            for (epoch, (a, b)) in reference.iter().zip(losses.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{strategy}: epoch {epoch} loss {a} (naive-eligible) vs {b} \
                     (all-packed, {threads} kernel threads)"
                );
            }
        }
    }
}

#[test]
fn panel_cache_and_workspace_reuse_are_deterministic_across_runs() {
    // Two independent trainers (fresh panel cache + workspace pool each)
    // must reproduce each other exactly; buffer recycling inside one run
    // must not leak state between batches or epochs.
    let a = run_with_kernel(
        TrainingStrategy::CombinedMs,
        ParallelConfig::with_threads(2),
    );
    let b = run_with_kernel(
        TrainingStrategy::CombinedMs,
        ParallelConfig::with_threads(2),
    );
    for (epoch, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "epoch {epoch}: rerun diverged");
    }
}
