//! The MS3 numerical contract (PR satellite: precision-equivalence
//! suite).
//!
//! Three layers of proof, cheapest to strongest:
//!
//! 1. **Exhaustive format coverage** — every one of the 65 536 f16 bit
//!    patterns (and every bf16 pattern) survives the widen → narrow
//!    round trip exactly; narrowing is idempotent.
//! 2. **Correct rounding (RNE)** — the fast conversion kernels agree
//!    with a brute-force nearest-value-ties-to-even reference on
//!    arbitrary f32 inputs, subnormals, overflow boundary and all.
//! 3. **MS3 neutrality** — an MS3 training step with f32 storage is
//!    **bit-identical** to the baseline `train_step` at *any*
//!    checkpoint interval: recompute replays the same f32 kernels on
//!    the same seeds, so `k` must not perturb a single ulp. (`k = 1`
//!    is the ISSUE's headline contract; `k ∈ {2, 4}` additionally pins
//!    the recompute path itself.)

use eta_lstm::core::layer::Instruments;
use eta_lstm::core::model::{LstmModel, StepPlan, StepResult};
use eta_lstm::core::ms3::Ms3Config;
use eta_lstm::core::{LstmConfig, Targets};
use eta_lstm::tensor::lowp::{
    bf16_bits_to_f32, f16_bits_to_f32, f16_nearest_reference, f32_to_bf16_bits, f32_to_f16_bits,
    quantize,
};
use eta_lstm::tensor::{init, Matrix, Precision};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// 1. Exhaustive format coverage
// ---------------------------------------------------------------------

/// Every non-NaN f16 bit pattern is exactly representable in f32 and
/// must narrow back to the identical bits; NaN patterns must stay NaN
/// (the kernel quiets payloads, so bit equality is not required).
#[test]
fn f16_widen_narrow_is_identity_on_all_65536_patterns() {
    for bits in 0u16..=u16::MAX {
        let wide = f16_bits_to_f32(bits);
        if wide.is_nan() {
            assert!(
                f16_bits_to_f32(f32_to_f16_bits(wide)).is_nan(),
                "NaN pattern {bits:#06x} left the NaN space"
            );
            continue;
        }
        assert_eq!(
            f32_to_f16_bits(wide),
            bits,
            "pattern {bits:#06x} (= {wide}) did not round-trip"
        );
        // Idempotence: quantizing an exactly-representable value is a
        // no-op.
        assert_eq!(quantize(Precision::F16, wide).to_bits(), wide.to_bits());
    }
}

/// Same contract for bf16 (trivial by construction — bf16 is a bit
/// prefix of f32 — but the rounding-add in the kernel must not disturb
/// exact values).
#[test]
fn bf16_widen_narrow_is_identity_on_all_patterns() {
    for bits in 0u16..=u16::MAX {
        let wide = bf16_bits_to_f32(bits);
        if wide.is_nan() {
            assert!(bf16_bits_to_f32(f32_to_bf16_bits(wide)).is_nan());
            continue;
        }
        assert_eq!(f32_to_bf16_bits(wide), bits);
        assert_eq!(quantize(Precision::Bf16, wide).to_bits(), wide.to_bits());
    }
}

// ---------------------------------------------------------------------
// 2. Correct rounding against brute-force references
// ---------------------------------------------------------------------

/// Brute-force correctly-rounded bf16 reference, mirroring
/// `lowp::f16_nearest_reference`: scan every candidate, pick the
/// nearest, break ties toward the even significand. Infinity counts as
/// the carried-out value 2^128 for distance purposes.
fn bf16_nearest_reference(x: f32) -> u16 {
    if x.is_nan() {
        return f32_to_bf16_bits(x);
    }
    // Saturate before measuring distances so an infinite input still
    // orders the candidates sensibly (mirrors the f16 reference).
    let xd = (x as f64).clamp(-(2.0f64.powi(129)), 2.0f64.powi(129));
    let mut best_bits = 0u16;
    let mut best_err = f64::INFINITY;
    for cand in 0u16..=u16::MAX {
        let v = bf16_bits_to_f32(cand);
        if v.is_nan() {
            continue;
        }
        let vv = if v.is_infinite() {
            (v.signum() as f64) * 2.0f64.powi(128)
        } else {
            v as f64
        };
        let err = (xd - vv).abs();
        if err < best_err || (err == best_err && (cand & 1 == 0) && (best_bits & 1 == 1)) {
            best_err = err;
            best_bits = cand;
        }
    }
    if best_bits & 0x7fff == 0 {
        return if x.is_sign_negative() { 0x8000 } else { 0x0000 };
    }
    best_bits
}

/// Boundary magnitudes around the f16 subnormal and overflow edges,
/// where uniform bit sampling rarely lands.
const F16_BOUNDARY_MAGS: [f32; 9] = [
    6.0e-8, 6.2e-8, 5.96e-8, 6.1e-5, 6.0e-5, 65503.0, 65504.5, 65519.9, 65520.1,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The fast f16 kernel is correctly rounded for arbitrary f32 bit
    /// patterns (subnormal, overflow and underflow regions included).
    #[test]
    fn f16_kernel_matches_nearest_even_reference(bits in 0u32..=u32::MAX) {
        let x = f32::from_bits(bits);
        if !x.is_nan() {
            prop_assert!(
                f32_to_f16_bits(x) == f16_nearest_reference(x),
                "f16 kernel mis-rounds {} ({:#010x})", x, bits
            );
        }
    }

    /// Likewise in the numerically interesting band around the f16
    /// subnormal/overflow boundaries.
    #[test]
    fn f16_kernel_matches_reference_near_boundaries(
        pick in 0usize..F16_BOUNDARY_MAGS.len(),
        jitter in -0.02f32..0.02,
        neg in proptest::bool::ANY,
    ) {
        let x = F16_BOUNDARY_MAGS[pick] * (1.0 + jitter) * if neg { -1.0 } else { 1.0 };
        prop_assert_eq!(f32_to_f16_bits(x), f16_nearest_reference(x));
    }

    /// The fast bf16 kernel is correctly rounded for arbitrary f32 bit
    /// patterns.
    #[test]
    fn bf16_kernel_matches_nearest_even_reference(bits in 0u32..=u32::MAX) {
        let x = f32::from_bits(bits);
        if !x.is_nan() {
            prop_assert!(
                f32_to_bf16_bits(x) == bf16_nearest_reference(x),
                "bf16 kernel mis-rounds {} ({:#010x})", x, bits
            );
        }
    }
}

// ---------------------------------------------------------------------
// 3. MS3 with f32 storage is bitwise-baseline at every k
// ---------------------------------------------------------------------

fn random_case(
    input: usize,
    hidden: usize,
    layers: usize,
    seq: usize,
    batch: usize,
    seed: u64,
) -> (LstmModel, Vec<Matrix>, Targets) {
    let classes = 3usize;
    let cfg = LstmConfig::builder()
        .input_size(input)
        .hidden_size(hidden)
        .layers(layers)
        .seq_len(seq)
        .batch_size(batch)
        .output_size(classes)
        .build()
        .expect("valid config");
    let model = LstmModel::new(&cfg, seed);
    let xs: Vec<_> = (0..seq)
        .map(|t| init::uniform(batch, input, -1.0, 1.0, seed + t as u64))
        .collect();
    let targets = Targets::Classes((0..batch).map(|i| i % classes).collect());
    (model, xs, targets)
}

fn assert_bitwise_equal(base: &StepResult, ms3: &StepResult, label: &str) {
    assert_eq!(
        base.loss.to_bits(),
        ms3.loss.to_bits(),
        "{label}: loss diverged"
    );
    for (l, (gb, gm)) in base
        .grads
        .cells
        .iter()
        .zip(ms3.grads.cells.iter())
        .enumerate()
    {
        assert_eq!(&gb.dw, &gm.dw, "{label}: layer {l} dW diverged");
        assert_eq!(&gb.du, &gm.du, "{label}: layer {l} dU diverged");
        assert_eq!(&gb.db, &gm.db, "{label}: layer {l} db diverged");
    }
    assert_eq!(
        &base.grads.head.dw, &ms3.grads.head.dw,
        "{label}: head dW diverged"
    );
    assert_eq!(
        base.magnitudes, ms3.magnitudes,
        "{label}: gradient magnitudes diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// MS3 with f32 storage must be bit-identical to the baseline step
    /// for k ∈ {1, 2, 4}: k = 1 exercises the "MS3 wiring is inert"
    /// contract, k > 1 exercises checkpoint + recompute (which replays
    /// the identical f32 kernels on the identical seeds).
    #[test]
    fn ms3_f32_storage_is_bitwise_baseline(
        input in 2usize..8,
        hidden in 2usize..10,
        layers in 1usize..4,
        seq in 2usize..9,
        batch in 1usize..6,
        seed in 0u64..1000,
    ) {
        let (model, xs, targets) = random_case(input, hidden, layers, seq, batch, seed);
        let inst = Instruments::new();
        let base = model
            .train_step(&xs, &targets, &StepPlan::baseline(), &inst)
            .expect("baseline step");
        for k in [1usize, 2, 4] {
            let plan = StepPlan {
                ms3: Some(Ms3Config::new(k, Precision::F32)),
                ..StepPlan::baseline()
            };
            let ms3 = model
                .train_step(&xs, &targets, &plan, &inst)
                .expect("ms3 step");
            assert_bitwise_equal(&base, &ms3, &format!("k={k}"));
            prop_assert!(!ms3.ms3_overflow);
            if k == 1 {
                prop_assert!(ms3.ms3_recompute_cells == 0, "k=1 must not recompute");
            } else if seq > k {
                prop_assert!(
                    ms3.ms3_recompute_cells > 0,
                    "k={} on seq {} never hit the recompute path", k, seq
                );
            }
            prop_assert!(!ms3.ms3_conv.any(), "f32 storage counted range events");
        }
    }

    /// Per-timestep losses exercise the other backward entry (dys fed at
    /// every step); the same bitwise contract must hold.
    #[test]
    fn ms3_f32_storage_is_bitwise_baseline_step_targets(
        hidden in 2usize..8,
        seq in 3usize..8,
        batch in 1usize..5,
        seed in 0u64..1000,
    ) {
        let (model, xs, _) = random_case(4, hidden, 2, seq, batch, seed);
        let targets = Targets::StepClasses(vec![(0..batch).map(|i| i % 3).collect(); seq]);
        let inst = Instruments::new();
        let base = model
            .train_step(&xs, &targets, &StepPlan::baseline(), &inst)
            .expect("baseline step");
        let plan = StepPlan {
            ms3: Some(Ms3Config::new(4, Precision::F32)),
            ..StepPlan::baseline()
        };
        let ms3 = model.train_step(&xs, &targets, &plan, &inst).expect("ms3 step");
        assert_bitwise_equal(&base, &ms3, "step-targets k=4");
    }

    /// Narrow storage changes values but must stay deterministic: the
    /// same step twice gives bit-identical results, and a recomputed
    /// tape (k = 4) is byte-identical to the stored one (k = 1) because
    /// quantization is a pure function of the stored seeds.
    #[test]
    fn ms3_narrow_storage_is_deterministic_and_k_invariant(
        hidden in 2usize..8,
        seq in 3usize..8,
        batch in 1usize..5,
        seed in 0u64..1000,
        f16 in proptest::bool::ANY,
    ) {
        let precision = if f16 { Precision::F16 } else { Precision::Bf16 };
        let (model, xs, targets) = random_case(4, hidden, 2, seq, batch, seed);
        let inst = Instruments::new();
        let step = |k: usize| {
            let plan = StepPlan {
                ms3: Some(Ms3Config::new(k, precision)),
                ..StepPlan::baseline()
            };
            model.train_step(&xs, &targets, &plan, &inst).expect("ms3 step")
        };
        let a = step(1);
        let b = step(1);
        assert_bitwise_equal(&a, &b, &format!("{precision} determinism"));
        let c = step(4);
        assert_bitwise_equal(&a, &c, &format!("{precision} k-invariance"));
    }
}
