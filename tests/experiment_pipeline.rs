//! Integration tests of the full experiment pipeline: measured effects →
//! scaled machine models → the paper's headline orderings. These pin the
//! qualitative claims every figure harness prints.

use eta_lstm::accel::arch::{AccelConfig, ArchKind, EtaAccel};
use eta_lstm::gpu::{GpuModel, GpuSpec};
use eta_lstm::memsim::model::{footprint, traffic, OptEffects};
use eta_lstm::workloads::Benchmark;

fn gpu() -> GpuModel {
    GpuModel::new(GpuSpec::v100())
}

fn machine(kind: ArchKind) -> EtaAccel {
    EtaAccel::new(AccelConfig::paper_4board(), kind)
}

/// Representative measured effects (P1 density from instrumented runs,
/// skip fraction from the Eq. 4 plan).
fn effects() -> OptEffects {
    OptEffects::combined(0.4, 0.5)
}

#[test]
fn eta_lstm_beats_every_other_design_on_every_benchmark() {
    for b in Benchmark::ALL {
        let shape = b.spec().shape();
        let base = gpu().estimate(&shape, &OptEffects::baseline());
        let t_full = machine(ArchKind::DynArch)
            .simulate(&shape, &effects())
            .time_s;
        let others = [
            gpu().estimate(&shape, &effects()).time_s,
            machine(ArchKind::LstmInf)
                .simulate(&shape, &OptEffects::baseline())
                .time_s,
            machine(ArchKind::StaticArch)
                .simulate(&shape, &OptEffects::baseline())
                .time_s,
            machine(ArchKind::DynArch)
                .simulate(&shape, &OptEffects::baseline())
                .time_s,
        ];
        for (i, &t) in others.iter().enumerate() {
            assert!(
                t_full < t,
                "{b}: eta-LSTM ({t_full}s) must beat design {i} ({t}s)"
            );
        }
        let speedup = base.time_s / t_full;
        assert!(
            (1.5..7.0).contains(&speedup),
            "{b}: overall speedup {speedup} outside the paper's neighborhood (avg 3.99x, max 5.73x)"
        );
    }
}

#[test]
fn lstm_inf_is_the_worst_hardware_design() {
    for b in Benchmark::ALL {
        let shape = b.spec().shape();
        let t_inf = machine(ArchKind::LstmInf)
            .simulate(&shape, &OptEffects::baseline())
            .time_s;
        let t_static = machine(ArchKind::StaticArch)
            .simulate(&shape, &OptEffects::baseline())
            .time_s;
        let t_dyn = machine(ArchKind::DynArch)
            .simulate(&shape, &OptEffects::baseline())
            .time_s;
        assert!(t_dyn < t_static && t_static < t_inf, "{b}: ordering broken");
    }
}

#[test]
fn dyn_arch_energy_efficiency_beats_baseline_everywhere() {
    // Fig. 16: Dyn-Arch's perf/W is above the GPU baseline on every
    // benchmark (average 1.67x in the paper).
    let mut ratios = Vec::new();
    for b in Benchmark::ALL {
        let shape = b.spec().shape();
        let g = gpu().estimate(&shape, &OptEffects::baseline());
        let a = machine(ArchKind::DynArch).simulate(&shape, &OptEffects::baseline());
        let ratio = (g.time_s / a.time_s) * (g.energy_j / a.energy_j());
        // Weight-heavy short-sequence benchmarks (TREC-10) pay the
        // replicated-gradient all-reduce tax, landing at ≈1.0.
        assert!(
            ratio > 0.9,
            "{b}: Dyn-Arch perf/W ratio {ratio} below baseline"
        );
        ratios.push(ratio);
    }
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    assert!(
        (1.2..2.6).contains(&geomean),
        "Dyn-Arch efficiency geomean {geomean} vs the paper's 1.67x average"
    );
}

#[test]
fn combined_footprint_reduction_grows_with_layer_length() {
    // The paper's per-benchmark spread: long-layer benchmarks save the
    // most footprint (max 75.75 % on long configs).
    let short = Benchmark::Trec10.spec().shape(); // LL 18
    let long = Benchmark::Babi.spec().shape(); // LL 303
    let red = |shape| {
        let b = footprint(&shape, &OptEffects::baseline()).total();
        let c = footprint(&shape, &effects()).total();
        1.0 - c as f64 / b as f64
    };
    assert!(red(long) > red(short) + 0.1, "long layers must save more");
    assert!(
        red(long) > 0.4,
        "BABI-scale reduction {} too small",
        red(long)
    );
}

#[test]
fn intermediate_traffic_reduction_hits_paper_band() {
    // Paper: eta-LSTM cuts intermediate-variable data movement by
    // 80.04 % on average.
    let mut reductions = Vec::new();
    for b in Benchmark::ALL {
        let shape = b.spec().shape();
        let base = traffic(&shape, &OptEffects::baseline()).intermediates;
        let opt = traffic(&shape, &effects()).intermediates;
        reductions.push(1.0 - opt as f64 / base as f64);
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!(
        (0.5..0.95).contains(&avg),
        "intermediate traffic reduction {avg} vs paper's 80 %"
    );
}

#[test]
fn gpu_oom_reproduces_fig3b() {
    let rtx = GpuModel::new(GpuSpec::rtx5000());
    let shape = |ln| eta_lstm::memsim::model::LstmShape::new(2048, 2048, ln, 35, 128);
    assert!(rtx.estimate(&shape(6), &OptEffects::baseline()).fits);
    assert!(!rtx.estimate(&shape(7), &OptEffects::baseline()).fits);
    assert!(!rtx.estimate(&shape(8), &OptEffects::baseline()).fits);
}

#[test]
fn ms1_helps_accelerator_more_than_gpu() {
    // The co-design argument: MS1's fine-grained sparsity needs the
    // accelerator's decoder to become compute savings.
    let shape = Benchmark::Imdb.spec().shape();
    let eff = OptEffects::ms1(0.4);
    let g_base = gpu().estimate(&shape, &OptEffects::baseline()).time_s;
    let g_ms1 = gpu().estimate(&shape, &eff).time_s;
    let a_base = machine(ArchKind::DynArch)
        .simulate(&shape, &OptEffects::baseline())
        .time_s;
    let a_ms1 = machine(ArchKind::DynArch).simulate(&shape, &eff).time_s;
    let gpu_gain = g_base / g_ms1;
    let acc_gain = a_base / a_ms1;
    assert!(
        acc_gain > gpu_gain * 1.1,
        "accelerator MS1 gain {acc_gain} should clearly exceed GPU gain {gpu_gain}"
    );
}
