//! ULP-bounded equivalence contract of the AVX2/FMA microkernel layer
//! (PR tentpole).
//!
//! The SIMD kernels are **not** bit-identical to the scalar
//! microkernels: FMA performs one rounding where scalar mul+add
//! performs two, and reduction depths beyond `KC` re-associate at
//! chunk boundaries. This suite pins down exactly how far the paths
//! may diverge and where they must not diverge at all:
//!
//! 1. **ULP budget per orientation** — for every `nt`/`nn`/`tn` shape,
//!    each SIMD output element is within 8 ULP of the scalar result,
//!    or within `2k·ε · |A|·|B|` (the condition floor for cancelling
//!    sums, where 8-ULP relative comparison is meaningless).
//! 2. **Dispatch boundary** — shapes below `PACK_MIN_FLOPS` stay on
//!    the bit-exact scalar path no matter what the CPU supports.
//! 3. **Bitwise determinism per dispatch path** — at 1, 2, and 8
//!    kernel threads the same input yields the same bits, because the
//!    SIMD gate is a function of the *full* logical shape (fixed
//!    before row partitioning) and each output element's FMA sequence
//!    depends only on `(k, KC)`.
//!
//! Both CI legs run this file: with `ETA_SIMD=off` every comparison
//! degenerates to scalar-vs-scalar (trivially within budget), which is
//! itself part of the contract — the env override must not change any
//! claim here, only which kernel backs it.

use eta_lstm::tensor::{init, kernels, simd, Matrix, PackedB, ParallelConfig, Store};
use proptest::prelude::*;

/// ULP distance two same-sign finite floats may differ by before we
/// call them different numbers.
const ULP_BUDGET: u32 = 8;

/// Element-wise hybrid check: ULP-close, or absolutely close relative
/// to the same product over |A|·|B| (which bounds the achievable
/// accuracy of *any* summation order at depth `k`).
fn assert_ulp_close(label: &str, got: &Matrix, reference: &Matrix, absref: &Matrix, k: usize) {
    let tol = 2.0 * k as f32 * f32::EPSILON;
    for (i, ((&g, &r), &ab)) in got
        .as_slice()
        .iter()
        .zip(reference.as_slice())
        .zip(absref.as_slice())
        .enumerate()
    {
        let ulp_ok = if g == r {
            true // covers +0.0 vs -0.0
        } else if g.is_sign_positive() == r.is_sign_positive() {
            g.to_bits().abs_diff(r.to_bits()) <= ULP_BUDGET
        } else {
            false
        };
        assert!(
            ulp_ok || (g - r).abs() <= tol * ab,
            "{label}: element {i} diverged beyond the budget: simd={g:e} scalar={r:e} \
             (|A||B| floor {:e})",
            tol * ab
        );
    }
}

fn assert_bits_equal(label: &str, a: &Matrix, b: &Matrix) {
    let same = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(same, "{label}: results are not bit-identical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// nt orientation: `A [m,k] · (B [n,k])ᵀ`.
    #[test]
    fn nt_simd_matches_scalar_within_ulp_budget(
        m in 1usize..40,
        k in 1usize..300,
        n in 1usize..33,
        seed in 0u64..50,
    ) {
        let a = init::uniform(m, k, -1.0, 1.0, seed);
        let b = init::uniform(n, k, -1.0, 1.0, seed + 1);
        let pb = PackedB::from_nt(&b);
        let mut simd_out = Matrix::zeros(m, n);
        let mut scalar_out = Matrix::zeros(m, n);
        simd::gemm_rows_nt(a.as_slice(), m, k, &pb, simd_out.as_mut_slice(), Store::Assign);
        kernels::gemm_nt_rows(a.as_slice(), m, k, &pb, scalar_out.as_mut_slice(), Store::Assign);
        let absref = a
            .map(f32::abs)
            .matmul_nt_naive(&b.map(f32::abs))
            .expect("shapes agree");
        assert_ulp_close("nt", &simd_out, &scalar_out, &absref, k);
    }

    /// nn orientation: `A [m,k] · B [k,n]`.
    #[test]
    fn nn_simd_matches_scalar_within_ulp_budget(
        m in 1usize..40,
        k in 1usize..300,
        n in 1usize..33,
        seed in 0u64..50,
    ) {
        let a = init::uniform(m, k, -1.0, 1.0, seed);
        let b = init::uniform(k, n, -1.0, 1.0, seed + 1);
        let pb = PackedB::from_nn(&b);
        let mut simd_out = Matrix::zeros(m, n);
        let mut scalar_out = Matrix::zeros(m, n);
        simd::gemm_rows_nn(a.as_slice(), m, k, &pb, simd_out.as_mut_slice(), Store::Assign);
        kernels::gemm_nn_rows(a.as_slice(), m, k, &pb, scalar_out.as_mut_slice(), Store::Assign);
        let absref = a
            .map(f32::abs)
            .matmul_nn_naive(&b.map(f32::abs))
            .expect("shapes agree");
        assert_ulp_close("nn", &simd_out, &scalar_out, &absref, k);
    }

    /// tn orientation through the full dispatch: `(A [k,m])ᵀ · B [k,n]`
    /// — the SIMD route transposes A once and streams the nn kernel,
    /// the scalar route strides columns; both must stay within budget
    /// of the naive reference.
    #[test]
    fn tn_dispatch_matches_naive_within_ulp_budget(
        m in 1usize..40,
        k in 1usize..300,
        n in 1usize..33,
        seed in 0u64..50,
    ) {
        let a = init::uniform(k, m, -1.0, 1.0, seed);
        let b = init::uniform(k, n, -1.0, 1.0, seed + 1);
        let pb = PackedB::from_nn(&b);
        let got = a.matmul_tn_packed(&pb).expect("shapes agree");
        let reference = a.matmul_tn_naive(&b).expect("shapes agree");
        let absref = a
            .map(f32::abs)
            .matmul_tn_naive(&b.map(f32::abs))
            .expect("shapes agree");
        assert_ulp_close("tn", &got, &reference, &absref, k);
    }

    /// Row-partition invariance: any worker split of the rows produces
    /// the same bits as the unsplit call, for both wrapper kernels.
    #[test]
    fn row_partition_never_changes_bits(
        m in 2usize..40,
        k in 1usize..300,
        n in 1usize..33,
        split in 1usize..8,
        seed in 0u64..50,
    ) {
        let a = init::uniform(m, k, -1.0, 1.0, seed);
        let b = init::uniform(n, k, -1.0, 1.0, seed + 1);
        let pb = PackedB::from_nt(&b);
        let mut whole = Matrix::zeros(m, n);
        simd::gemm_rows_nt(a.as_slice(), m, k, &pb, whole.as_mut_slice(), Store::Assign);
        let mut parts = Matrix::zeros(m, n);
        let cut = split.min(m - 1).max(1);
        simd::gemm_rows_nt(
            &a.as_slice()[..cut * k],
            cut,
            k,
            &pb,
            &mut parts.as_mut_slice()[..cut * n],
            Store::Assign,
        );
        simd::gemm_rows_nt(
            &a.as_slice()[cut * k..],
            m - cut,
            k,
            &pb,
            &mut parts.as_mut_slice()[cut * n..],
            Store::Assign,
        );
        assert_bits_equal("row partition", &whole, &parts);
    }
}

/// Shapes below `PACK_MIN_FLOPS` must take the bit-exact scalar path
/// regardless of CPU features or the env override; at the boundary the
/// gate flips exactly with `simd::enabled()`.
#[test]
fn dispatch_boundary_keeps_small_shapes_bit_exact() {
    // 32·32·32 == PACK_MIN_FLOPS: first shape at or past the gate.
    assert_eq!(simd::use_simd(32, 32, 32), simd::enabled());
    assert!(!simd::use_simd(31, 32, 32));
    assert!(!simd::use_simd(32, 31, 32));
    assert!(!simd::use_simd(32, 32, 31));

    // Below the gate the packed dispatch is bitwise the naive result
    // (the seed contract of the scalar layer), SIMD present or not.
    let a = init::uniform(31, 32, -1.0, 1.0, 7);
    let b = init::uniform(32, 32, -1.0, 1.0, 8);
    let packed = a
        .matmul_nt_packed(&PackedB::from_nt(&b))
        .expect("shapes agree");
    let naive = a.matmul_nt_naive(&b).expect("shapes agree");
    assert_bits_equal("below-threshold nt", &packed, &naive);
}

/// The epilogue-fused kernel lands the final chunk through
/// `f(j, out + acc)`; for `k ≤ KC` (single chunk) that is bitwise the
/// plain Add-store followed by the transform.
#[test]
fn fused_epilogue_is_bitwise_plain_store_plus_transform_for_single_chunk() {
    let (m, k, n) = (17, 96, 24);
    let a = init::uniform(m, k, -1.0, 1.0, 11);
    let b = init::uniform(n, k, -1.0, 1.0, 12);
    let pb = PackedB::from_nt(&b);
    let bias: Vec<f32> = (0..n).map(|j| 0.25 * j as f32 - 1.0).collect();
    let cfg = ParallelConfig::serial();

    let mut fused = init::uniform(m, n, -1.0, 1.0, 13);
    let mut plain = fused.clone();
    a.matmul_nt_packed_epilogue(&pb, &mut fused, &cfg, |j, v| (v + bias[j]).tanh())
        .expect("shapes agree");
    a.matmul_nt_packed_into(&pb, &mut plain, Store::Add, &cfg)
        .expect("shapes agree");
    let plain = Matrix::from_fn(m, n, |r, c| (plain.get(r, c) + bias[c]).tanh());
    assert_bits_equal("fused epilogue", &fused, &plain);
}

/// Same input → same bits at 1, 2, and 8 kernel threads, whichever
/// dispatch path the session's env/CPU selects, for all three
/// orientations training uses.
#[test]
fn thread_count_never_changes_bits_on_either_dispatch_path() {
    let (m, k, n) = (48, 260, 40); // k > KC: chunked reduction included
    let a_nt = init::uniform(m, k, -1.0, 1.0, 21);
    let b_nt = init::uniform(n, k, -1.0, 1.0, 22);
    let b_nn = init::uniform(k, n, -1.0, 1.0, 23);
    let a_tn = init::uniform(k, m, -1.0, 1.0, 24);
    let pb_nt = PackedB::from_nt(&b_nt);
    let pb_nn = PackedB::from_nn(&b_nn);

    let serial_nt = a_nt.matmul_nt_packed(&pb_nt).expect("shapes agree");
    let serial_nn = a_nt.matmul_nn_packed(&pb_nn).expect("shapes agree");
    let serial_tn = a_tn.matmul_tn_packed(&pb_nn).expect("shapes agree");

    for threads in [1usize, 2, 8] {
        let mut cfg = ParallelConfig::with_threads(threads);
        cfg.min_kernel_flops = 1; // force the parallel row split
        let par_nt = a_nt
            .par_matmul_nt_packed(&pb_nt, &cfg)
            .expect("shapes agree");
        let par_nn = a_nt
            .par_matmul_nn_packed(&pb_nn, &cfg)
            .expect("shapes agree");
        let par_tn = a_tn.par_matmul_tn(&b_nn, &cfg).expect("shapes agree");
        assert_bits_equal(&format!("nt at {threads} threads"), &serial_nt, &par_nt);
        assert_bits_equal(&format!("nn at {threads} threads"), &serial_nn, &par_nn);
        assert_bits_equal(&format!("tn at {threads} threads"), &serial_tn, &par_tn);
    }
}

/// The dispatch telemetry counters actually move: a large GEMM records
/// either a SIMD dispatch or a scalar fallback, never neither.
#[test]
fn dispatch_counters_classify_every_large_gemm() {
    use eta_lstm::tensor::stats;
    let a = init::uniform(64, 64, -1.0, 1.0, 31);
    let b = init::uniform(64, 64, -1.0, 1.0, 32);
    let pb = PackedB::from_nt(&b);
    let before = stats::dispatch_snapshot();
    let _ = a.matmul_nt_packed(&pb).expect("shapes agree");
    let d = stats::dispatch_snapshot().since(&before);
    if simd::enabled() {
        assert!(d.simd >= 1, "SIMD-enabled session must record a dispatch");
    } else {
        assert!(d.scalar >= 1, "scalar session must record a fallback");
    }
}
