//! Optimizer integration: momentum and Adam must train the same tasks
//! the SGD-based harness uses, and compose with the memory-saving
//! strategies (which are optimizer-agnostic).

use eta_lstm::core::optimizer::{AdamConfig, MomentumConfig, Optimizer, Sgd};
use eta_lstm::core::{LstmConfig, Trainer, TrainingStrategy};
use eta_lstm::workloads::SyntheticTask;

fn config() -> LstmConfig {
    LstmConfig::builder()
        .input_size(12)
        .hidden_size(16)
        .layers(2)
        .seq_len(12)
        .batch_size(6)
        .output_size(3)
        .build()
        .expect("valid config")
}

fn task() -> SyntheticTask {
    SyntheticTask::classification(12, 3, 12, 9).with_batch_size(6)
}

#[test]
fn momentum_converges() {
    let mut trainer = Trainer::new(config(), TrainingStrategy::Baseline, 42)
        .expect("trainer")
        .with_optimizer_kind(Optimizer::momentum(MomentumConfig::default()));
    let report = trainer.run(&task(), 8).expect("training");
    assert!(
        report.final_loss() < report.epochs[0].mean_loss * 0.5,
        "momentum failed to converge: {} -> {}",
        report.epochs[0].mean_loss,
        report.final_loss()
    );
}

#[test]
fn adam_converges() {
    let mut trainer = Trainer::new(config(), TrainingStrategy::Baseline, 42)
        .expect("trainer")
        .with_optimizer_kind(Optimizer::adam(AdamConfig {
            lr: 5e-3,
            ..AdamConfig::default()
        }));
    let report = trainer.run(&task(), 10).expect("training");
    assert!(
        report.final_loss() < report.epochs[0].mean_loss * 0.5,
        "Adam failed to converge: {} -> {}",
        report.epochs[0].mean_loss,
        report.final_loss()
    );
}

#[test]
fn adam_composes_with_combine_ms() {
    // The memory-saving optimizations act on the tape, not the update
    // rule — they must compose with any optimizer.
    let mut trainer = Trainer::new(config(), TrainingStrategy::CombinedMs, 42)
        .expect("trainer")
        .with_optimizer_kind(Optimizer::adam(AdamConfig {
            lr: 5e-3,
            ..AdamConfig::default()
        }));
    let report = trainer.run(&task(), 10).expect("training");
    assert!(report.final_loss() < report.epochs[0].mean_loss * 0.6);
    assert!(
        report.epochs.last().expect("epochs").skip_fraction > 0.0,
        "MS2 still active under Adam"
    );
    assert!(
        report.mean_p1_density() < 1.0,
        "MS1 still active under Adam"
    );
}

#[test]
fn momentum_accelerates_over_plain_sgd_at_same_lr() {
    let lr = 0.05;
    let run = |opt: Optimizer| {
        let mut trainer = Trainer::new(config(), TrainingStrategy::Baseline, 42)
            .expect("trainer")
            .with_optimizer_kind(opt);
        trainer.run(&task(), 6).expect("training").final_loss()
    };
    let plain = run(Optimizer::sgd(Sgd { lr, clip: 5.0 }));
    let momentum = run(Optimizer::momentum(MomentumConfig {
        lr,
        momentum: 0.9,
        clip: 5.0,
    }));
    assert!(
        momentum < plain,
        "momentum ({momentum}) should reach lower loss than plain SGD ({plain}) at lr {lr}"
    );
}
