//! End-to-end training integration tests across the facade crate: every
//! strategy must train a learnable task to convergence, with the
//! instrumented memory behavior the paper claims.

use eta_lstm::core::ms1::Ms1Config;
use eta_lstm::core::strategy::StrategyParams;
use eta_lstm::core::{LstmConfig, Trainer, TrainingStrategy};
use eta_lstm::workloads::SyntheticTask;

fn config() -> LstmConfig {
    LstmConfig::builder()
        .input_size(16)
        .hidden_size(24)
        .layers(2)
        .seq_len(24)
        .batch_size(6)
        .output_size(4)
        .build()
        .expect("valid config")
}

fn task() -> SyntheticTask {
    SyntheticTask::classification(16, 4, 24, 3).with_batch_size(6)
}

#[test]
fn every_strategy_converges() {
    for strategy in TrainingStrategy::ALL {
        let mut trainer = Trainer::new(config(), strategy, 42).expect("trainer");
        let report = trainer.run(&task(), 8).expect("training");
        assert!(
            report.final_loss() < report.epochs[0].mean_loss * 0.6,
            "{strategy}: loss {} -> {} did not converge",
            report.epochs[0].mean_loss,
            report.final_loss()
        );
    }
}

#[test]
fn ms1_zero_threshold_is_bit_exact_over_epochs() {
    let t = task();
    let mut baseline = Trainer::new(config(), TrainingStrategy::Baseline, 42).expect("trainer");
    let mut exact_ms1 = Trainer::new(config(), TrainingStrategy::Ms1, 42)
        .expect("trainer")
        .with_params(StrategyParams {
            ms1: Ms1Config { threshold: 0.0 },
            ..StrategyParams::default()
        });
    let rb = baseline.run(&t, 4).expect("training");
    let rm = exact_ms1.run(&t, 4).expect("training");
    for (b, m) in rb.epochs.iter().zip(rm.epochs.iter()) {
        assert!(
            (b.mean_loss - m.mean_loss).abs() < 1e-9,
            "execution reordering must be exact at threshold 0: {} vs {}",
            b.mean_loss,
            m.mean_loss
        );
    }
}

#[test]
fn footprint_ordering_matches_paper() {
    // Peak intermediate footprint: baseline > MS1 > Combine-MS, and
    // baseline > MS2 (after warm-up).
    let t = task();
    let mut peaks = std::collections::HashMap::new();
    for strategy in TrainingStrategy::ALL {
        let mut trainer = Trainer::new(config(), strategy, 42).expect("trainer");
        let report = trainer.run(&t, 6).expect("training");
        peaks.insert(
            strategy,
            report.epochs.last().expect("epochs").peak_intermediates,
        );
    }
    let base = peaks[&TrainingStrategy::Baseline];
    assert!(peaks[&TrainingStrategy::Ms1] < base);
    assert!(peaks[&TrainingStrategy::Ms2] < base);
    assert!(peaks[&TrainingStrategy::CombinedMs] < peaks[&TrainingStrategy::Ms1]);
    assert!(peaks[&TrainingStrategy::CombinedMs] < peaks[&TrainingStrategy::Ms2]);
}

#[test]
fn traffic_ordering_matches_paper() {
    let t = task();
    let run = |strategy| {
        let mut trainer = Trainer::new(config(), strategy, 42).expect("trainer");
        let report = trainer.run(&t, 6).expect("training");
        report.epochs.last().expect("epochs").traffic
    };
    let base = run(TrainingStrategy::Baseline);
    let comb = run(TrainingStrategy::CombinedMs);
    // Intermediate-variable traffic must drop sharply (paper: −80 %).
    assert!(
        (comb[2] as f64) < base[2] as f64 * 0.7,
        "combined intermediates traffic {} vs baseline {}",
        comb[2],
        base[2]
    );
}

#[test]
fn convergence_is_not_slowed_by_combine_ms() {
    // Paper Table II: no convergence-speed impact. Compare per-epoch
    // loss trajectories.
    let t = task();
    let mut baseline = Trainer::new(config(), TrainingStrategy::Baseline, 42).expect("trainer");
    let mut combined = Trainer::new(config(), TrainingStrategy::CombinedMs, 42).expect("trainer");
    let rb = baseline.run(&t, 10).expect("training");
    let rc = combined.run(&t, 10).expect("training");
    for (i, (b, c)) in rb.epochs.iter().zip(rc.epochs.iter()).enumerate() {
        assert!(
            c.mean_loss < b.mean_loss * 2.0 + 0.1,
            "epoch {i}: combined loss {} far above baseline {}",
            c.mean_loss,
            b.mean_loss
        );
    }
    assert!(rc.final_loss() < rc.epochs[0].mean_loss * 0.6);
}

#[test]
fn facade_reexports_are_wired() {
    // Compile-time sanity that the facade exposes all subsystems.
    let _ = eta_lstm::tensor::Matrix::zeros(1, 1);
    let _ = eta_lstm::memsim::MemoryTracker::new();
    let _ = eta_lstm::gpu::GpuSpec::v100();
    let _ = eta_lstm::accel::accumulator::AccumulatorSim::default();
    let _ = eta_lstm::workloads::Benchmark::Ptb.spec();
}
