//! Property-based invariants spanning crates: training produces finite
//! gradients for arbitrary small shapes, the skip planner respects its
//! structural guarantees, and the analytic models are monotone in the
//! optimization effects.

use eta_lstm::core::layer::Instruments;
use eta_lstm::core::model::{LstmModel, StepPlan};
use eta_lstm::core::ms2::{plan_skips, GradPredictor, Ms2Config, MAX_SKIP_FRACTION};
use eta_lstm::core::{LstmConfig, Targets};
use eta_lstm::memsim::model::{footprint, traffic, LstmShape, OptEffects};
use eta_lstm::tensor::init;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn train_step_gradients_are_finite_for_any_small_shape(
        input in 2usize..8,
        hidden in 2usize..10,
        layers in 1usize..4,
        seq in 2usize..8,
        batch in 1usize..5,
        seed in 0u64..100,
    ) {
        let classes = 3usize;
        let cfg = LstmConfig::builder()
            .input_size(input)
            .hidden_size(hidden)
            .layers(layers)
            .seq_len(seq)
            .batch_size(batch)
            .output_size(classes)
            .build()
            .expect("valid");
        let model = LstmModel::new(&cfg, seed);
        let xs: Vec<_> = (0..seq)
            .map(|t| init::uniform(batch, input, -1.0, 1.0, seed + t as u64))
            .collect();
        let targets = Targets::Classes((0..batch).map(|i| i % classes).collect());
        let result = model
            .train_step(&xs, &targets, &StepPlan::baseline(), &Instruments::new())
            .expect("train step");
        prop_assert!(result.loss.is_finite());
        for g in &result.grads.cells {
            prop_assert!(g.dw.as_slice().iter().all(|v| v.is_finite()));
            prop_assert!(g.du.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn skip_plans_respect_cap_and_keep_guarantees(
        layers in 1usize..6,
        seq in 2usize..64,
        threshold in 0.0f64..1.5,
        beta_sign in proptest::bool::ANY,
        loss in 0.01f64..100.0,
    ) {
        let beta = if beta_sign { 1.0 } else { -1.0 };
        let predictor = GradPredictor { alpha: 1.0, beta };
        let cfg = Ms2Config { skip_threshold: threshold };
        let plan = plan_skips(&predictor, loss, layers, seq, &cfg);
        prop_assert_eq!(plan.keep.len(), layers);
        for (l, row) in plan.keep.iter().enumerate() {
            prop_assert_eq!(row.len(), seq);
            prop_assert!(row.iter().any(|&k| k), "layer {} keeps nothing", l);
            let skipped = row.iter().filter(|&&k| !k).count();
            prop_assert!(
                skipped as f64 <= (seq as f64 * MAX_SKIP_FRACTION).floor() + 1e-9,
                "layer {} skipped {} of {}",
                l, skipped, seq
            );
            prop_assert!(plan.scale[l] >= 1.0);
            prop_assert!(plan.scale[l].is_finite());
        }
    }

    #[test]
    fn footprint_and_traffic_are_monotone_in_effects(
        hidden in 64usize..512,
        layers in 1usize..5,
        seq in 8usize..64,
        density in 0.05f64..0.95,
        skip in 0.0f64..0.5,
    ) {
        let shape = LstmShape::new(hidden, hidden, layers, seq, 16);
        let base_f = footprint(&shape, &OptEffects::baseline()).total();
        let base_t = traffic(&shape, &OptEffects::baseline()).total();
        let opt = OptEffects::combined(density, skip);
        prop_assert!(footprint(&shape, &opt).total() <= base_f);
        prop_assert!(traffic(&shape, &opt).total() <= base_t);

        // Lower density (stronger pruning) never increases footprint.
        let denser = OptEffects::combined((density * 0.5).max(0.01), skip);
        prop_assert!(
            footprint(&shape, &denser).intermediates
                <= footprint(&shape, &opt).intermediates
        );
    }

    #[test]
    fn accelerator_time_and_energy_positive_and_improve_with_effects(
        hidden in 128usize..1024,
        layers in 1usize..4,
        seq in 8usize..64,
    ) {
        use eta_lstm::accel::arch::{AccelConfig, ArchKind, EtaAccel};
        let machine = EtaAccel::new(AccelConfig::paper_4board(), ArchKind::DynArch);
        let shape = LstmShape::new(hidden, hidden, layers, seq, 32);
        let base = machine.simulate(&shape, &OptEffects::baseline());
        let opt = machine.simulate(&shape, &OptEffects::combined(0.4, 0.4));
        prop_assert!(base.time_s > 0.0 && base.energy_j() > 0.0);
        prop_assert!(opt.time_s < base.time_s);
        prop_assert!(opt.energy_j() < base.energy_j());
        prop_assert!(base.utilization > 0.5);
    }
}
