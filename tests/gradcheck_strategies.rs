//! Full-BPTT finite-difference gradient checks on a 2-layer model,
//! across every training strategy and both execution engines (PR
//! satellite: gradcheck × {Baseline, MS1, CombinedMs} × {serial,
//! sharded-parallel}).
//!
//! Tolerance note: the model computes in `f32`, so a central difference
//! `(L(w+ε) − L(w−ε)) / 2ε` at ε = 5e-3 carries roughly 1e-4 absolute
//! noise from rounding in the forward pass alone — a 1e-4 *relative*
//! bound is unattainable without an f64 forward. The repo-wide
//! contract (see `eta_lstm::core::gradcheck`) is `passes(0.05)` with
//! sub-resolution gradients excluded, which reliably separates correct
//! backward passes from broken ones (the corrupted-gradient test in
//! the gradcheck module shows wrong gradients land far above 0.05).

use eta_lstm::core::gradcheck::check_step_with;
use eta_lstm::core::layer::Instruments;
use eta_lstm::core::model::{LstmModel, StepPlan};
use eta_lstm::core::ms1::Ms1Config;
use eta_lstm::core::ms2::SkipPlan;
use eta_lstm::core::ms3::{self, LossScaler, Ms3Config};
use eta_lstm::core::parallel::{train_step_sharded, Parallelism};
use eta_lstm::core::{LstmConfig, Targets};
use eta_lstm::tensor::{init, Matrix, Precision};

const LAYERS: usize = 2;
const SEQ: usize = 6;

fn two_layer_case() -> (LstmModel, Vec<Matrix>, Targets) {
    let cfg = LstmConfig::builder()
        .input_size(5)
        .hidden_size(7)
        .layers(LAYERS)
        .seq_len(SEQ)
        .batch_size(4)
        .output_size(3)
        .build()
        .expect("valid config");
    let model = LstmModel::new(&cfg, 41);
    let xs: Vec<_> = (0..SEQ)
        .map(|t| init::uniform(4, 5, -1.0, 1.0, 100 + t as u64))
        .collect();
    (model, xs, Targets::Classes(vec![0, 1, 2, 0]))
}

/// The three strategies' step plans, pinned to exact-gradient settings
/// (MS1 threshold 0 keeps all P1 values; `SkipPlan::keep_all` drives
/// the MS2 skip machinery without dropping any cell — a pruning
/// threshold or a real skip plan approximates gradients *by design*
/// and has no finite-difference ground truth to check against).
fn strategy_plans() -> Vec<(&'static str, StepPlan)> {
    vec![
        ("baseline", StepPlan::baseline()),
        (
            "ms1",
            StepPlan {
                ms1: Some(Ms1Config { threshold: 0.0 }),
                ..StepPlan::baseline()
            },
        ),
        (
            "combined",
            StepPlan {
                ms1: Some(Ms1Config { threshold: 0.0 }),
                skip: Some(SkipPlan::keep_all(LAYERS, SEQ)),
                ..StepPlan::baseline()
            },
        ),
    ]
}

/// MS3 step plans × precision with their documented gradcheck
/// tolerances and finite-difference step sizes:
///
/// - **f32 storage** (k = 2, 4): the recompute path replays identical
///   f32 kernels, so the step is bit-identical to baseline and inherits
///   the repo-wide 0.05 contract at ε = 5e-3 unchanged.
/// - **bf16 storage** (k = 2, 4): stored activations round to an 8-bit
///   mantissa (relative step ~2⁻⁸ ≈ 0.4 %). The loss becomes a
///   staircase at that granularity, so the finite difference needs a
///   larger step (ε = 2e-2) to climb over the quantization plateaus,
///   and the analytic gradient — exact for the *quantized* forward
///   under the straight-through convention — can differ from the
///   secant by the rounding noise it steps over: tolerance 0.35.
/// - **f16 storage** (k = 2, 4): 10-bit mantissa (relative step
///   ~2⁻¹⁰ ≈ 0.1 %), four times finer than bf16, so ε = 1e-2 and
///   tolerance 0.15 suffice.
fn ms3_gradcheck_matrix() -> Vec<(&'static str, Ms3Config, f32, f64)> {
    let mut out = Vec::new();
    for k in [2usize, 4] {
        out.push(("ms3-f32", Ms3Config::new(k, Precision::F32), 5e-3, 0.05));
        out.push(("ms3-bf16", Ms3Config::new(k, Precision::Bf16), 2e-2, 0.35));
        out.push(("ms3-f16", Ms3Config::new(k, Precision::F16), 1e-2, 0.15));
    }
    out
}

#[test]
fn gradcheck_passes_for_every_strategy_and_engine() {
    let (model, xs, targets) = two_layer_case();
    let engines = [
        ("serial", Parallelism::serial()),
        ("parallel", Parallelism::with_threads(4)),
    ];
    for (strategy, plan) in strategy_plans() {
        for (engine, par) in &engines {
            let check = check_step_with(&model, &xs, &targets, &plan, par, 24, 5e-3, 7)
                .unwrap_or_else(|e| panic!("{strategy}/{engine} gradcheck errored: {e}"));
            assert!(
                check.passes(0.05),
                "{strategy}/{engine}: max relative gradient error {}",
                check.max_rel_error
            );
        }
    }
}

#[test]
fn gradcheck_passes_for_ms3_at_every_precision_and_interval() {
    let (model, xs, targets) = two_layer_case();
    for (label, cfg, eps, tolerance) in ms3_gradcheck_matrix() {
        let plan = StepPlan {
            ms3: Some(cfg),
            ..StepPlan::baseline()
        };
        let check = check_step_with(
            &model,
            &xs,
            &targets,
            &plan,
            &Parallelism::serial(),
            24,
            eps,
            7,
        )
        .unwrap_or_else(|e| panic!("{label} k={} gradcheck errored: {e}", cfg.k));
        assert!(
            check.passes(tolerance),
            "{label} k={}: max relative gradient error {} exceeds {tolerance}",
            cfg.k,
            check.max_rel_error
        );
    }
}

/// A power-of-two loss scale multiplies every intermediate gradient
/// exactly (backward is linear, ×2ⁿ is exact in f32 barring overflow),
/// so scaling by 1024 and unscaling must return **bit-identical**
/// gradients — the scaler moves range, never precision.
#[test]
fn loss_scaling_is_bitwise_invisible_in_unscaled_gradients() {
    let (model, xs, targets) = two_layer_case();
    let inst = Instruments::new();
    let base = model
        .train_step(&xs, &targets, &StepPlan::baseline(), &inst)
        .expect("baseline step");
    let scaled_plan = StepPlan {
        ms3: Some(Ms3Config::new(1, Precision::F32)),
        loss_scale: 1024.0,
        ..StepPlan::baseline()
    };
    let scaled = model
        .train_step(&xs, &targets, &scaled_plan, &inst)
        .expect("scaled step");
    assert_eq!(base.loss.to_bits(), scaled.loss.to_bits());
    assert!(!scaled.ms3_overflow);
    for (gb, gs) in base.grads.cells.iter().zip(scaled.grads.cells.iter()) {
        assert_eq!(&gb.dw, &gs.dw, "loss scaling leaked into dW");
        assert_eq!(&gb.du, &gs.du, "loss scaling leaked into dU");
        assert_eq!(&gb.db, &gs.db, "loss scaling leaked into db");
    }
    assert_eq!(&base.grads.head.dw, &scaled.grads.head.dw);
}

/// Overflow recovery, step level: an absurd loss scale drives the f32
/// backward to ±∞, the step must come back flagged (not poisoned-apply,
/// not an error), and the scaler must skip it and back off until the
/// scale re-enters the finite range.
#[test]
fn overflowed_step_is_flagged_and_scaler_recovers() {
    let (model, xs, targets) = two_layer_case();
    let inst = Instruments::new();
    let cfg = Ms3Config::new(2, Precision::F16);
    let mut scaler = LossScaler::new(&cfg);
    // Force the scaler far past any sane range: 2¹²⁶ × O(1) gradients
    // overflow f32 during backward accumulation.
    let mut scale = 2.0f32.powi(126);
    let mut skips = 0u32;
    loop {
        let plan = StepPlan {
            ms3: Some(cfg),
            loss_scale: scale,
            ..StepPlan::baseline()
        };
        let result = model
            .train_step(&xs, &targets, &plan, &inst)
            .expect("step must not error on overflow");
        if !result.ms3_overflow {
            // Recovered: the surviving gradients must be finite and the
            // backoff must have actually happened at least once.
            assert!(ms3::grads_are_finite(&result.grads));
            assert!(skips > 0, "2^126 never overflowed — injection failed");
            assert!(scaler.overflow_skips() as u32 == skips);
            break;
        }
        let apply = scaler.on_step(true);
        assert!(!apply, "an overflowed step must be skipped");
        skips += 1;
        scale *= 0.5;
        assert!(skips < 200, "scaler never recovered");
    }
}

/// Overflow detection, gradient level: a single injected ±∞ anywhere in
/// the gradient set must trip the finite-check that gates the optimizer
/// apply.
#[test]
fn injected_infinity_trips_the_finite_gate() {
    let (model, xs, targets) = two_layer_case();
    let inst = Instruments::new();
    let mut result = model
        .train_step(&xs, &targets, &StepPlan::baseline(), &inst)
        .expect("baseline step");
    assert!(ms3::grads_are_finite(&result.grads));
    result.grads.cells[0].dw.set(0, 0, f32::INFINITY);
    assert!(!ms3::grads_are_finite(&result.grads));
    result.grads.cells[0].dw.set(0, 0, 0.0);
    assert!(ms3::grads_are_finite(&result.grads));
    result.grads.head.dw.set(0, 0, f32::NAN);
    assert!(!ms3::grads_are_finite(&result.grads));
}

#[test]
fn serial_and_sharded_analytic_gradients_agree() {
    let (model, xs, targets) = two_layer_case();
    let inst = Instruments::new();
    for (strategy, plan) in strategy_plans() {
        let serial = model
            .train_step(&xs, &targets, &plan, &inst)
            .expect("serial step");
        let sharded = train_step_sharded(
            &model,
            &xs,
            &targets,
            &plan,
            &inst,
            &Parallelism::with_threads(4),
        )
        .expect("sharded step");
        assert!(
            (serial.loss - sharded.loss).abs() < 1e-9,
            "{strategy}: loss {} vs {}",
            serial.loss,
            sharded.loss
        );
        for (l, (gs, gp)) in serial
            .grads
            .cells
            .iter()
            .zip(sharded.grads.cells.iter())
            .enumerate()
        {
            assert!(
                gs.dw.rel_diff(&gp.dw) < 1e-5,
                "{strategy}: layer {l} dW rel diff {}",
                gs.dw.rel_diff(&gp.dw)
            );
            assert!(
                gs.du.rel_diff(&gp.du) < 1e-5,
                "{strategy}: layer {l} dU rel diff {}",
                gs.du.rel_diff(&gp.du)
            );
        }
        assert!(
            serial.grads.head.dw.rel_diff(&sharded.grads.head.dw) < 1e-5,
            "{strategy}: head dW diverges"
        );
    }
}
