//! Full-BPTT finite-difference gradient checks on a 2-layer model,
//! across every training strategy and both execution engines (PR
//! satellite: gradcheck × {Baseline, MS1, CombinedMs} × {serial,
//! sharded-parallel}).
//!
//! Tolerance note: the model computes in `f32`, so a central difference
//! `(L(w+ε) − L(w−ε)) / 2ε` at ε = 5e-3 carries roughly 1e-4 absolute
//! noise from rounding in the forward pass alone — a 1e-4 *relative*
//! bound is unattainable without an f64 forward. The repo-wide
//! contract (see `eta_lstm::core::gradcheck`) is `passes(0.05)` with
//! sub-resolution gradients excluded, which reliably separates correct
//! backward passes from broken ones (the corrupted-gradient test in
//! the gradcheck module shows wrong gradients land far above 0.05).

use eta_lstm::core::gradcheck::check_step_with;
use eta_lstm::core::layer::Instruments;
use eta_lstm::core::model::{LstmModel, StepPlan};
use eta_lstm::core::ms1::Ms1Config;
use eta_lstm::core::ms2::SkipPlan;
use eta_lstm::core::parallel::{train_step_sharded, Parallelism};
use eta_lstm::core::{LstmConfig, Targets};
use eta_lstm::tensor::{init, Matrix};

const LAYERS: usize = 2;
const SEQ: usize = 6;

fn two_layer_case() -> (LstmModel, Vec<Matrix>, Targets) {
    let cfg = LstmConfig::builder()
        .input_size(5)
        .hidden_size(7)
        .layers(LAYERS)
        .seq_len(SEQ)
        .batch_size(4)
        .output_size(3)
        .build()
        .expect("valid config");
    let model = LstmModel::new(&cfg, 41);
    let xs: Vec<_> = (0..SEQ)
        .map(|t| init::uniform(4, 5, -1.0, 1.0, 100 + t as u64))
        .collect();
    (model, xs, Targets::Classes(vec![0, 1, 2, 0]))
}

/// The three strategies' step plans, pinned to exact-gradient settings
/// (MS1 threshold 0 keeps all P1 values; `SkipPlan::keep_all` drives
/// the MS2 skip machinery without dropping any cell — a pruning
/// threshold or a real skip plan approximates gradients *by design*
/// and has no finite-difference ground truth to check against).
fn strategy_plans() -> Vec<(&'static str, StepPlan)> {
    vec![
        ("baseline", StepPlan::baseline()),
        (
            "ms1",
            StepPlan {
                ms1: Some(Ms1Config { threshold: 0.0 }),
                ..StepPlan::baseline()
            },
        ),
        (
            "combined",
            StepPlan {
                ms1: Some(Ms1Config { threshold: 0.0 }),
                skip: Some(SkipPlan::keep_all(LAYERS, SEQ)),
                ..StepPlan::baseline()
            },
        ),
    ]
}

#[test]
fn gradcheck_passes_for_every_strategy_and_engine() {
    let (model, xs, targets) = two_layer_case();
    let engines = [
        ("serial", Parallelism::serial()),
        ("parallel", Parallelism::with_threads(4)),
    ];
    for (strategy, plan) in strategy_plans() {
        for (engine, par) in &engines {
            let check = check_step_with(&model, &xs, &targets, &plan, par, 24, 5e-3, 7)
                .unwrap_or_else(|e| panic!("{strategy}/{engine} gradcheck errored: {e}"));
            assert!(
                check.passes(0.05),
                "{strategy}/{engine}: max relative gradient error {}",
                check.max_rel_error
            );
        }
    }
}

#[test]
fn serial_and_sharded_analytic_gradients_agree() {
    let (model, xs, targets) = two_layer_case();
    let inst = Instruments::new();
    for (strategy, plan) in strategy_plans() {
        let serial = model
            .train_step(&xs, &targets, &plan, &inst)
            .expect("serial step");
        let sharded = train_step_sharded(
            &model,
            &xs,
            &targets,
            &plan,
            &inst,
            &Parallelism::with_threads(4),
        )
        .expect("sharded step");
        assert!(
            (serial.loss - sharded.loss).abs() < 1e-9,
            "{strategy}: loss {} vs {}",
            serial.loss,
            sharded.loss
        );
        for (l, (gs, gp)) in serial
            .grads
            .cells
            .iter()
            .zip(sharded.grads.cells.iter())
            .enumerate()
        {
            assert!(
                gs.dw.rel_diff(&gp.dw) < 1e-5,
                "{strategy}: layer {l} dW rel diff {}",
                gs.dw.rel_diff(&gp.dw)
            );
            assert!(
                gs.du.rel_diff(&gp.du) < 1e-5,
                "{strategy}: layer {l} dU rel diff {}",
                gs.du.rel_diff(&gp.du)
            );
        }
        assert!(
            serial.grads.head.dw.rel_diff(&sharded.grads.head.dw) < 1e-5,
            "{strategy}: head dW diverges"
        );
    }
}
