//! Validation of the analytic `eta-memsim` models against the
//! instrumented training framework: the closed forms used at paper
//! scale must agree with what small real runs actually measure.

use eta_lstm::core::{LstmConfig, Trainer, TrainingStrategy};
use eta_lstm::memsim::model::{footprint, LstmShape, OptEffects};
use eta_lstm::workloads::{SyntheticTask, TrajectoryTask};

fn config() -> LstmConfig {
    LstmConfig::builder()
        .input_size(16)
        .hidden_size(16)
        .layers(2)
        .seq_len(20)
        .batch_size(4)
        .output_size(3)
        .build()
        .expect("valid config")
}

fn shape() -> LstmShape {
    config().to_shape()
}

#[test]
fn measured_intermediate_footprint_matches_closed_form_exactly() {
    // Baseline: 5 dense H-wide tensors per cell.
    let task = SyntheticTask::classification(16, 3, 20, 3).with_batch_size(4);
    let mut trainer = Trainer::new(config(), TrainingStrategy::Baseline, 42).expect("trainer");
    let report = trainer.run(&task, 1).expect("training");
    let measured = report.epochs[0].peak_intermediates;
    let analytic = shape().intermediate_bytes();
    assert_eq!(
        measured, analytic,
        "instrumented intermediates {measured} vs closed form {analytic}"
    );
}

#[test]
fn measured_activation_footprint_matches_closed_form() {
    // The instrumented path stores each layer's h sequence; the closed
    // form additionally counts the input sequence, which the harness's
    // task owns. Check the h-only part.
    let task = SyntheticTask::classification(16, 3, 20, 3).with_batch_size(4);
    let mut trainer = Trainer::new(config(), TrainingStrategy::Baseline, 42).expect("trainer");
    let report = trainer.run(&task, 1).expect("training");
    let cfg = config();
    let h_bytes = (cfg.layers * cfg.seq_len * cfg.batch_size * cfg.hidden_size * 4) as u64;
    let snapshot_peak = report.epochs[0].peak_footprint;
    assert!(
        snapshot_peak >= h_bytes,
        "peak footprint {snapshot_peak} cannot be below the stored h bytes {h_bytes}"
    );
}

#[test]
fn measured_ms1_ratio_tracks_the_model_prediction() {
    // Train with MS1, read the measured density, and check that the
    // analytic compressed-size ratio predicts the measured peak within
    // the bitmap-vs-pairs encoding slack.
    let task = SyntheticTask::classification(16, 3, 20, 3).with_batch_size(4);
    let mut base = Trainer::new(config(), TrainingStrategy::Baseline, 42).expect("trainer");
    let base_peak = base.run(&task, 1).expect("training").epochs[0].peak_intermediates as f64;
    let mut ms1 = Trainer::new(config(), TrainingStrategy::Ms1, 42).expect("trainer");
    let report = ms1.run(&task, 1).expect("training");
    let measured_ratio = report.epochs[0].peak_intermediates as f64 / base_peak;
    let predicted_ratio = OptEffects::ms1(report.epochs[0].p1_density).ms1_intermediate_ratio();
    assert!(
        (measured_ratio - predicted_ratio).abs() < 0.15,
        "measured intermediate ratio {measured_ratio} vs model {predicted_ratio}"
    );
}

#[test]
fn ms2_footprint_scales_with_measured_skip_fraction() {
    let task = SyntheticTask::classification(16, 3, 20, 3).with_batch_size(4);
    let mut trainer = Trainer::new(config(), TrainingStrategy::Ms2, 42).expect("trainer");
    let report = trainer.run(&task, 5).expect("training");
    let sigma = report.epochs[4].skip_fraction;
    assert!(sigma > 0.0);
    let measured = report.epochs[4].peak_intermediates as f64;
    let baseline = shape().intermediate_bytes() as f64;
    // Skipped cells store nothing except boundary states; the measured
    // ratio must track (1 − σ) within the boundary-state slack.
    let ratio = measured / baseline;
    assert!(
        (ratio - (1.0 - sigma)).abs() < 0.1,
        "MS2 intermediates ratio {ratio} vs 1−σ = {}",
        1.0 - sigma
    );
}

#[test]
fn footprint_model_total_is_consistent() {
    // The closed-form total must equal the sum of its parts and scale
    // linearly in batch size.
    let s1 = LstmShape::new(64, 64, 2, 10, 8);
    let s2 = LstmShape::new(64, 64, 2, 10, 16);
    let f1 = footprint(&s1, &OptEffects::baseline());
    let f2 = footprint(&s2, &OptEffects::baseline());
    assert_eq!(f1.total(), f1.weights + f1.activations + f1.intermediates);
    assert_eq!(f2.intermediates, 2 * f1.intermediates);
    assert_eq!(f2.activations, 2 * f1.activations);
    assert_eq!(f2.weights, f1.weights, "weights are batch-independent");
}

#[test]
fn trajectory_task_is_learnable_to_the_noise_floor() {
    // WAYMO analogue: the trained filter's MAE should clearly beat the
    // raw last-observation predictor (whose MAE ≈ noise + one velocity
    // step) on held-out data.
    use eta_lstm::core::Task;
    use eta_lstm::workloads::metrics;

    let noise = 0.15f32;
    let cfg = LstmConfig::builder()
        .input_size(4)
        .hidden_size(16)
        .layers(2)
        .seq_len(12)
        .batch_size(8)
        .output_size(2)
        .build()
        .expect("valid config");
    let task = TrajectoryTask::new(4, 12, noise, 3)
        .with_batch_size(8)
        .with_batches_per_epoch(8);
    let mut trainer = Trainer::new(cfg, TrainingStrategy::Baseline, 42)
        .expect("trainer")
        .with_optimizer_kind(eta_lstm::core::optimizer::Optimizer::momentum(
            eta_lstm::core::optimizer::MomentumConfig {
                lr: 0.1,
                momentum: 0.9,
                clip: 5.0,
            },
        ));
    trainer.run(&task, 50).expect("training");

    let mut model_mae = 0.0;
    let mut last_obs_mae = 0.0;
    let batches = 4;
    for i in 0..batches {
        let batch = task.batch(777, i);
        if let eta_lstm::core::Targets::Regression(target) = &batch.targets {
            let out = trainer
                .model()
                .forward_inference(&batch.inputs)
                .expect("inference");
            let pred = out.last().expect("sequence");
            let pred2 = eta_lstm::tensor::Matrix::from_fn(pred.rows(), 2, |r, c| pred.get(r, c));
            model_mae += metrics::mae(&pred2, target);
            // The naive predictor repeats the last (noisy) observation.
            let last_obs = eta_lstm::tensor::Matrix::from_fn(pred.rows(), 2, |r, c| {
                batch.inputs[11].get(r, c)
            });
            last_obs_mae += metrics::mae(&last_obs, target);
        }
    }
    model_mae /= batches as f64;
    last_obs_mae /= batches as f64;
    assert!(
        model_mae < last_obs_mae,
        "trained filter MAE {model_mae} should beat the last-observation baseline {last_obs_mae}"
    );
}
