//! The information-theoretic learning test: on a Markov corpus the
//! trained LSTM's per-token loss must approach the chain's conditional
//! entropy (the Bayes-optimal loss) and clearly beat the uniform
//! baseline — under the baseline flow *and* under Combine-MS.

use eta_lstm::core::optimizer::Sgd;
use eta_lstm::core::{LstmConfig, Trainer, TrainingStrategy};
use eta_lstm::workloads::{MarkovChain, MarkovLmTask};

fn setup() -> (LstmConfig, MarkovLmTask, f64, f64) {
    let vocab = 8;
    let chain = MarkovChain::peaked(vocab, 0.85, 13);
    let entropy = chain.conditional_entropy();
    let uniform = (vocab as f64).ln();
    let config = LstmConfig::builder()
        .input_size(vocab)
        .hidden_size(20)
        .layers(2)
        .seq_len(12)
        .batch_size(8)
        .output_size(vocab)
        .build()
        .expect("valid config");
    let task = MarkovLmTask::new(chain, vocab, 12, 5)
        .with_batch_size(8)
        .with_batches_per_epoch(8);
    (config, task, entropy, uniform)
}

fn train(strategy: TrainingStrategy) -> (f64, f64, f64) {
    let (config, task, entropy, uniform) = setup();
    let mut trainer = Trainer::new(config, strategy, 42)
        .expect("trainer")
        .with_optimizer(Sgd { lr: 4.0, clip: 5.0 });
    let report = trainer.run(&task, 25).expect("training");
    (report.final_loss(), entropy, uniform)
}

#[test]
fn baseline_approaches_the_entropy_floor() {
    let (loss, entropy, uniform) = train(TrainingStrategy::Baseline);
    assert!(
        loss < uniform * 0.6,
        "loss {loss} should clearly beat the uniform baseline {uniform}"
    );
    assert!(
        loss < entropy + 0.35,
        "loss {loss} should approach the entropy floor {entropy}"
    );
    assert!(
        loss > entropy - 0.05,
        "loss {loss} cannot beat the entropy floor {entropy} (information-theoretic bound)"
    );
}

#[test]
fn combine_ms_reaches_the_same_floor() {
    let (base, entropy, _) = train(TrainingStrategy::Baseline);
    let (comb, _, _) = train(TrainingStrategy::CombinedMs);
    assert!(
        (comb - base).abs() < 0.25,
        "Combine-MS loss {comb} should track baseline {base} (floor {entropy})"
    );
}
