//! Determinism contract of the data-parallel engine (PR satellite):
//! `Trainer::run` must produce **bit-identical** loss trajectories at
//! any worker thread count. Shard boundaries depend only on the batch
//! size, each shard is computed by the exact serial kernels, and the
//! gradient tree reduction always combines shards in index order — so
//! threads are a latency knob, never a numerics knob.

use eta_lstm::core::parallel::Parallelism;
use eta_lstm::core::{LstmConfig, Trainer, TrainingStrategy};
use eta_lstm::workloads::SyntheticTask;

fn config() -> LstmConfig {
    LstmConfig::builder()
        .input_size(12)
        .hidden_size(16)
        .layers(2)
        .seq_len(12)
        .batch_size(8)
        .output_size(4)
        .build()
        .expect("valid config")
}

fn task() -> SyntheticTask {
    SyntheticTask::classification(12, 4, 12, 3).with_batch_size(8)
}

fn run_with_threads(strategy: TrainingStrategy, threads: usize) -> Vec<f64> {
    let mut trainer = Trainer::new(config(), strategy, 42)
        .expect("trainer")
        .with_parallelism(Parallelism::with_threads(threads));
    let report = trainer.run(&task(), 4).expect("training");
    let mut losses: Vec<f64> = report.epochs.iter().map(|e| e.mean_loss).collect();
    losses.push(report.final_loss());
    losses
}

#[test]
fn loss_trajectory_is_bit_identical_across_thread_counts() {
    for strategy in [TrainingStrategy::Baseline, TrainingStrategy::CombinedMs] {
        let reference = run_with_threads(strategy, 1);
        assert!(reference.iter().all(|l| l.is_finite()));
        for threads in [2, 8] {
            let losses = run_with_threads(strategy, threads);
            assert_eq!(reference.len(), losses.len());
            for (epoch, (a, b)) in reference.iter().zip(losses.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{strategy}: epoch {epoch} loss {a} (1 thread) vs {b} ({threads} threads)"
                );
            }
        }
    }
}

#[test]
fn parallel_training_still_converges() {
    let mut trainer = Trainer::new(config(), TrainingStrategy::Baseline, 42)
        .expect("trainer")
        .with_parallelism(Parallelism::with_threads(4));
    let report = trainer.run(&task(), 8).expect("training");
    assert!(
        report.final_loss() < report.epochs[0].mean_loss * 0.6,
        "parallel engine broke learning: {} -> {}",
        report.epochs[0].mean_loss,
        report.final_loss()
    );
}

#[test]
fn env_configured_engine_matches_explicit_threads() {
    // `Parallelism::from_env` only picks the *thread* count from
    // `ETA_THREADS`; shard count and kernels are fixed, so any env
    // value must reproduce the explicit-threads trajectory bit for bit.
    std::env::set_var(eta_lstm::tensor::parallel::THREADS_ENV, "3");
    let mut env_trainer = Trainer::new(config(), TrainingStrategy::Baseline, 42)
        .expect("trainer")
        .with_parallelism(Parallelism::from_env());
    std::env::remove_var(eta_lstm::tensor::parallel::THREADS_ENV);
    assert_eq!(env_trainer.parallelism().threads, 3);
    let report = env_trainer.run(&task(), 3).expect("training");
    let reference = run_with_threads(TrainingStrategy::Baseline, 1);
    for (epoch, (e, r)) in report.epochs.iter().zip(reference.iter()).enumerate() {
        assert_eq!(
            e.mean_loss.to_bits(),
            r.to_bits(),
            "epoch {epoch}: env-configured engine diverged"
        );
    }
}
