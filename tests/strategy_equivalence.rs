//! Property-based equivalence of the training strategies and execution
//! engines (PR satellite: strategy-equivalence suite).
//!
//! On arbitrary small configs and seeds:
//!
//! - **MS1 at threshold 0 is *exactly* equal to Baseline** — execution
//!   reordering with lossless compression must be bit-exact, gradient
//!   for gradient;
//! - **warm-up CombinedMs equals Baseline within 1e-5** relative
//!   tolerance (during warm-up no cell is skipped, so only the MS1
//!   storage path differs);
//! - **the sharded data-parallel engine matches the serial step within
//!   1e-5** relative tolerance on every gradient, and within 1e-9 on
//!   the loss (the shard reduction re-orders f32 sums, nothing more).

use eta_lstm::core::layer::Instruments;
use eta_lstm::core::model::{LstmModel, StepPlan, StepResult};
use eta_lstm::core::ms1::Ms1Config;
use eta_lstm::core::parallel::{train_step_sharded, Parallelism};
use eta_lstm::core::{LstmConfig, Targets};
use eta_lstm::tensor::{init, Matrix};
use proptest::prelude::*;

fn random_case(
    input: usize,
    hidden: usize,
    layers: usize,
    seq: usize,
    batch: usize,
    seed: u64,
) -> (LstmModel, Vec<Matrix>, Targets) {
    let classes = 3usize;
    let cfg = LstmConfig::builder()
        .input_size(input)
        .hidden_size(hidden)
        .layers(layers)
        .seq_len(seq)
        .batch_size(batch)
        .output_size(classes)
        .build()
        .expect("valid config");
    let model = LstmModel::new(&cfg, seed);
    let xs: Vec<_> = (0..seq)
        .map(|t| init::uniform(batch, input, -1.0, 1.0, seed + t as u64))
        .collect();
    let targets = Targets::Classes((0..batch).map(|i| i % classes).collect());
    (model, xs, targets)
}

fn max_grad_rel_diff(a: &StepResult, b: &StepResult) -> f64 {
    let mut max = 0.0f64;
    for (ga, gb) in a.grads.cells.iter().zip(b.grads.cells.iter()) {
        max = max.max(ga.dw.rel_diff(&gb.dw));
        max = max.max(ga.du.rel_diff(&gb.du));
    }
    max.max(a.grads.head.dw.rel_diff(&b.grads.head.dw))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// MS1 with threshold 0 keeps every P1 value, so the reordered
    /// backward must reproduce the baseline gradients **bit for bit**.
    #[test]
    fn ms1_threshold_zero_is_bitwise_baseline(
        input in 2usize..8,
        hidden in 2usize..10,
        layers in 1usize..4,
        seq in 2usize..8,
        batch in 1usize..6,
        seed in 0u64..1000,
    ) {
        let (model, xs, targets) = random_case(input, hidden, layers, seq, batch, seed);
        let inst = Instruments::new();
        let base = model
            .train_step(&xs, &targets, &StepPlan::baseline(), &inst)
            .expect("baseline step");
        let ms1_plan = StepPlan {
            ms1: Some(Ms1Config { threshold: 0.0 }),
            ..StepPlan::baseline()
        };
        let ms1 = model
            .train_step(&xs, &targets, &ms1_plan, &inst)
            .expect("ms1 step");
        prop_assert_eq!(base.loss.to_bits(), ms1.loss.to_bits());
        for (gb, gm) in base.grads.cells.iter().zip(ms1.grads.cells.iter()) {
            prop_assert_eq!(&gb.dw, &gm.dw);
            prop_assert_eq!(&gb.du, &gm.du);
            prop_assert_eq!(&gb.db, &gm.db);
        }
        prop_assert_eq!(&base.grads.head.dw, &ms1.grads.head.dw);
    }

    /// During MS2 warm-up no cell is skipped, so CombinedMs is the MS1
    /// storage path plus a no-op skip plan: gradients within 1e-5 of
    /// Baseline (identical up to the default MS1 pruning threshold 0 —
    /// we pin threshold 0 here; pruned thresholds are approximations by
    /// design and are covered by the looser layer-level tests).
    #[test]
    fn warmup_combined_matches_baseline(
        input in 2usize..8,
        hidden in 2usize..10,
        layers in 1usize..3,
        seq in 2usize..8,
        batch in 1usize..6,
        seed in 0u64..1000,
    ) {
        let (model, xs, targets) = random_case(input, hidden, layers, seq, batch, seed);
        let inst = Instruments::new();
        let base = model
            .train_step(&xs, &targets, &StepPlan::baseline(), &inst)
            .expect("baseline step");
        // Warm-up CombinedMs: MS1 storage, skip: None (no plan yet).
        let combined_plan = StepPlan {
            ms1: Some(Ms1Config { threshold: 0.0 }),
            skip: None,
            ..StepPlan::baseline()
        };
        let combined = model
            .train_step(&xs, &targets, &combined_plan, &inst)
            .expect("combined step");
        prop_assert!((base.loss - combined.loss).abs() < 1e-9);
        prop_assert!(max_grad_rel_diff(&base, &combined) < 1e-5);
    }

    /// The microbatch engine must agree with the serial step within the
    /// f32 reduction-reorder tolerance for every strategy's plan, and
    /// be bit-identical across thread counts.
    #[test]
    fn sharded_engine_matches_serial_for_every_strategy(
        input in 2usize..8,
        hidden in 2usize..10,
        layers in 1usize..3,
        seq in 2usize..6,
        batch in 2usize..9,
        seed in 0u64..1000,
        ms1 in proptest::bool::ANY,
    ) {
        let (model, xs, targets) = random_case(input, hidden, layers, seq, batch, seed);
        let inst = Instruments::new();
        let plan = if ms1 {
            StepPlan {
                ms1: Some(Ms1Config { threshold: 0.0 }),
                ..StepPlan::baseline()
            }
        } else {
            StepPlan::baseline()
        };
        let serial = model
            .train_step(&xs, &targets, &plan, &inst)
            .expect("serial step");
        let sharded = train_step_sharded(
            &model,
            &xs,
            &targets,
            &plan,
            &inst,
            &Parallelism::with_threads(2),
        )
        .expect("sharded step");
        prop_assert!((serial.loss - sharded.loss).abs() < 1e-9,
            "loss {} vs {}", serial.loss, sharded.loss);
        prop_assert!(max_grad_rel_diff(&serial, &sharded) < 1e-5);

        // Thread count is a pure latency knob: bit-identical results.
        let threads8 = train_step_sharded(
            &model,
            &xs,
            &targets,
            &plan,
            &inst,
            &Parallelism::with_threads(8),
        )
        .expect("8-thread step");
        prop_assert_eq!(sharded.loss.to_bits(), threads8.loss.to_bits());
        for (a, b) in sharded.grads.cells.iter().zip(threads8.grads.cells.iter()) {
            prop_assert_eq!(&a.dw, &b.dw);
            prop_assert_eq!(&a.du, &b.du);
        }
    }
}
