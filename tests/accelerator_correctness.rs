//! Cross-crate correctness tests: the accelerator's functional units
//! must compute the same results as the tensor substrate, and the DMA
//! compression path must interoperate with the MS1 packets.

use eta_lstm::accel::accumulator::AccumulatorSim;
use eta_lstm::accel::channel::Channel;
use eta_lstm::accel::dma::{DmaModule, WritePacket};
use eta_lstm::core::cell::{self, CellParams, P1Dense};
use eta_lstm::core::ms1::P1Packet;
use eta_lstm::tensor::{init, Matrix};

#[test]
fn channel_matvec_matches_tensor_matmul() {
    let ch = Channel::new();
    for seed in 0..5u64 {
        let w = init::uniform(40, 24, -1.0, 1.0, seed);
        let xv: Vec<f32> = init::uniform(1, 24, -1.0, 1.0, seed + 100).into_vec();
        let (out, stats) = ch.matvec(&w, &xv);
        let xm = Matrix::from_vec(24, 1, xv.clone()).expect("shape");
        let reference = w.matmul(&xm).expect("matmul");
        for (a, b) in out.iter().zip(reference.as_slice().iter()) {
            assert!((a - b).abs() < 1e-3, "channel {a} vs tensor {b}");
        }
        assert_eq!(stats.mult_ops, 40 * 24);
    }
}

#[test]
fn streaming_accumulator_matches_iterator_sum() {
    let sim = AccumulatorSim::new(8);
    for n in [1usize, 7, 63, 255, 1000] {
        let values: Vec<f32> = (0..n).map(|i| ((i % 17) as f32 - 8.0) / 4.0).collect();
        let run = sim.run(&values);
        let reference: f64 = values.iter().map(|&v| v as f64).sum();
        assert!(
            (run.sum as f64 - reference).abs() < 1e-3,
            "n={n}: {} vs {reference}",
            run.sum
        );
    }
}

#[test]
fn dma_compression_agrees_with_ms1_packet_sizes() {
    // The DMA compression module and the MS1 software path implement the
    // same near-zero pruning: their compressed sizes must agree on the
    // same data.
    let params = CellParams::new(16, 16, 9);
    let x = init::uniform(4, 16, -1.0, 1.0, 1);
    let h0 = init::uniform(4, 16, -0.5, 0.5, 2);
    let s0 = init::uniform(4, 16, -0.5, 0.5, 3);
    let fw = cell::forward(&params, &x, &h0, &s0).expect("forward");
    let p1 = P1Dense::compute(&fw, &s0).expect("p1");
    let packet = P1Packet::compress(&p1, 0.1);

    let mut dma = DmaModule::new(0.1);
    let mut dma_bytes = 0u64;
    for stream in p1.streams() {
        match dma.write(stream.as_slice(), true) {
            WritePacket::Compressed { bytes, .. } => dma_bytes += bytes,
            WritePacket::Dense { .. } => panic!("sparse-eligible stream passed through dense"),
        }
    }
    assert_eq!(dma_bytes, packet.compressed_bytes());
    assert_eq!(dma.stats().total, packet.stats().total);
    assert_eq!(dma.stats().kept, packet.stats().kept);
}

#[test]
fn dma_decoder_reconstruction_feeds_exact_backward() {
    // Decoding the DMA's compressed stream at threshold 0 and feeding it
    // through the backward pass must match the dense path.
    let params = CellParams::new(8, 8, 5);
    let x = init::uniform(2, 8, -1.0, 1.0, 11);
    let h0 = init::uniform(2, 8, -0.5, 0.5, 12);
    let s0 = init::uniform(2, 8, -0.5, 0.5, 13);
    let fw = cell::forward(&params, &x, &h0, &s0).expect("forward");
    let p1 = P1Dense::compute(&fw, &s0).expect("p1");
    let packet = P1Packet::compress(&p1, 0.0);
    let decoded = packet.decode();

    let dh = Matrix::filled(2, 8, 1.0);
    let ds = Matrix::filled(2, 8, 0.5);
    let mut g1 = cell::CellGrads::zeros_like(&params);
    let mut g2 = cell::CellGrads::zeros_like(&params);
    let o1 = cell::backward(&params, &p1, &x, &h0, &dh, &ds, &mut g1).expect("bp dense");
    let o2 = cell::backward(&params, &decoded, &x, &h0, &dh, &ds, &mut g2).expect("bp decoded");
    assert!(g1.dw.rel_diff(&g2.dw) < 1e-7);
    assert!(o1.dx.rel_diff(&o2.dx) < 1e-7);
}

#[test]
fn channel_cell_engine_matches_software_forward() {
    // The simulator's full cell datapath (MatVec on Omni-PEs, LUT
    // activations, EW chain) must compute what the training framework
    // computes, within LUT quantization tolerance.
    use eta_lstm::accel::cell_exec::{CellWeights, ChannelCellEngine};

    let input = 10;
    let hidden = 12;
    let params = CellParams::new(input, hidden, 21);
    let weights = CellWeights {
        w: params.w.clone(),
        u: params.u.clone(),
        b: params.b.clone(),
    };

    let batch = 3;
    let x = init::uniform(batch, input, -1.0, 1.0, 31);
    let h0 = init::uniform(batch, hidden, -0.5, 0.5, 32);
    let s0 = init::uniform(batch, hidden, -0.5, 0.5, 33);
    let reference = cell::forward(&params, &x, &h0, &s0).expect("software forward");

    let mut engine = ChannelCellEngine::baseline();
    for row in 0..batch {
        let exec = engine.execute(&weights, x.row(row), h0.row(row), s0.row(row));
        let out = &exec.outputs;
        for k in 0..hidden {
            assert!(
                (out.i[k] - reference.i.get(row, k)).abs() < 3e-3,
                "i[{row},{k}]: channel {} vs software {}",
                out.i[k],
                reference.i.get(row, k)
            );
            assert!((out.f[k] - reference.f.get(row, k)).abs() < 3e-3);
            assert!((out.c[k] - reference.c.get(row, k)).abs() < 3e-3);
            assert!((out.o[k] - reference.o.get(row, k)).abs() < 3e-3);
            assert!((out.s[k] - reference.s.get(row, k)).abs() < 5e-3);
            assert!((out.h[k] - reference.h.get(row, k)).abs() < 5e-3);
        }
    }
}

#[test]
fn channel_cell_engine_ms1_density_matches_software_packet() {
    use eta_lstm::accel::cell_exec::{CellWeights, ChannelCellEngine};

    let params = CellParams::new(12, 12, 23);
    let weights = CellWeights {
        w: params.w.clone(),
        u: params.u.clone(),
        b: params.b.clone(),
    };
    let x = init::uniform(1, 12, -1.0, 1.0, 41);
    let h0 = init::uniform(1, 12, -0.5, 0.5, 42);
    let s0 = init::uniform(1, 12, -0.5, 0.5, 43);

    // Software path.
    let fw = cell::forward(&params, &x, &h0, &s0).expect("forward");
    let p1 = P1Dense::compute(&fw, &s0).expect("p1");
    let packet = P1Packet::compress(&p1, 0.1);

    // Hardware path.
    let mut engine = ChannelCellEngine::with_ms1(0.1);
    let _ = engine.execute(&weights, x.row(0), h0.row(0), s0.row(0));
    let hw = engine.dma_stats();
    let sw = packet.stats();
    assert_eq!(hw.total, sw.total, "stream sizes must agree");
    // LUT quantization can flip elements sitting exactly at the
    // threshold; allow a couple of elements of slack.
    let diff = (hw.kept as i64 - sw.kept as i64).unsigned_abs();
    assert!(
        diff <= 3,
        "kept-element counts diverged: hardware {} vs software {}",
        hw.kept,
        sw.kept
    );
}

#[test]
fn channel_activation_units_match_reference_functions() {
    let ch = Channel::new();
    let v: Vec<f32> = (-40..=40).map(|i| i as f32 / 10.0).collect();
    let (sig, _) = ch.sigmoid(&v);
    let (th, _) = ch.tanh(&v);
    for (i, &x) in v.iter().enumerate() {
        assert!((sig[i] - eta_lstm::tensor::activation::sigmoid(x)).abs() < 2e-3);
        assert!((th[i] - x.tanh()).abs() < 2e-3);
    }
}
