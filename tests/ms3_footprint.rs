//! MS3 footprint regression tests (PR satellite): memsim-backed
//! assertions that the recompute tape scales as ~1/k, that the
//! MS1×MS2×MS3 composition never regresses past any of its components,
//! and that the roadmap's headline — ≥ 40 % peak-footprint reduction on
//! the LN7 shape at k = 4 + bf16 on top of Combine-MS — holds in the
//! analytic model. The full strategy × shape matrix is written to
//! `results/ms3_strategy_matrix.txt` so reviewers see the numbers the
//! assertions gate.

use eta_lstm::core::strategy::StrategyParams;
use eta_lstm::core::TrainingStrategy;
use eta_lstm::memsim::model::{footprint, traffic, FootprintBreakdown, LstmShape, OptEffects};
use std::fmt::Write as _;
use std::path::Path;

/// Representative measured effects (Fig. 6 / Table II neighbourhood):
/// MS1 keeps ~35 % of P1 values, MS2 skips ~49 % of BP cells.
const P1_DENSITY: f64 = 0.35;
const SKIP_FRACTION: f64 = 0.49;

fn ln_shape(layers: usize) -> LstmShape {
    LstmShape::new(2048, 2048, layers, 35, 128)
}

/// Strategy → memsim effects, with MS3 knobs from the repo-default
/// `StrategyParams` (k = 4, bf16) — the same mapping the bench harness
/// uses.
fn effects_for(strategy: TrainingStrategy) -> OptEffects {
    let ms3 = StrategyParams::default().ms3;
    let (k, bytes) = (ms3.k, ms3.precision.bytes_per_element());
    match strategy {
        TrainingStrategy::Baseline => OptEffects::baseline(),
        TrainingStrategy::Ms1 => OptEffects::ms1(P1_DENSITY),
        TrainingStrategy::Ms2 => OptEffects::ms2(SKIP_FRACTION),
        TrainingStrategy::CombinedMs => OptEffects::combined(P1_DENSITY, SKIP_FRACTION),
        TrainingStrategy::Ms3 => OptEffects::ms3(k, bytes),
        TrainingStrategy::CombinedAll => {
            OptEffects::combined(P1_DENSITY, SKIP_FRACTION).with_ms3(k, bytes)
        }
    }
}

#[test]
fn tape_bytes_scale_as_one_over_k() {
    let shape = ln_shape(7);
    let base = footprint(&shape, &OptEffects::baseline());
    for k in [2usize, 4, 8] {
        // f32 storage isolates the checkpointing lever.
        let ckpt = footprint(&shape, &OptEffects::ms3(k, 4));
        let ratio = ckpt.intermediates as f64 / base.intermediates as f64;
        let expect = 1.0 / k as f64;
        assert!(
            (ratio - expect).abs() < 1e-9,
            "k={k}: tape ratio {ratio} != 1/k = {expect}"
        );
        // Checkpointing alone must not touch activations or weights.
        assert_eq!(ckpt.activations, base.activations);
        assert_eq!(ckpt.weights, base.weights);
    }
}

#[test]
fn narrow_storage_halves_what_checkpointing_leaves() {
    let shape = ln_shape(7);
    let f32_k4 = footprint(&shape, &OptEffects::ms3(4, 4));
    let bf16_k4 = footprint(&shape, &OptEffects::ms3(4, 2));
    assert_eq!(bf16_k4.intermediates * 2, f32_k4.intermediates);
    assert_eq!(bf16_k4.activations * 2, f32_k4.activations);
    assert_eq!(bf16_k4.weights, f32_k4.weights);
}

/// The three-way composition must never exceed any single component's
/// footprint, in total or per category — the savings compose
/// multiplicatively, they don't fight.
#[test]
fn composition_never_exceeds_any_component() {
    for layers in 5..=8usize {
        let shape = ln_shape(layers);
        let all = footprint(&shape, &effects_for(TrainingStrategy::CombinedAll));
        for component in [
            TrainingStrategy::Ms1,
            TrainingStrategy::Ms2,
            TrainingStrategy::Ms3,
            TrainingStrategy::CombinedMs,
        ] {
            let part = footprint(&shape, &effects_for(component));
            assert!(
                all.total() <= part.total(),
                "LN{layers}: Combine-All total {} exceeds {component} total {}",
                all.total(),
                part.total()
            );
            assert!(
                all.intermediates <= part.intermediates,
                "LN{layers}/{component}"
            );
            assert!(
                all.activations <= part.activations,
                "LN{layers}/{component}"
            );
            assert!(all.weights <= part.weights, "LN{layers}/{component}");
        }
    }
}

/// Roadmap acceptance gate: MS1×MS2×MS3 at k = 4 + bf16 cuts the LN7
/// peak footprint by at least 40 % relative to baseline — and MS3 must
/// contribute beyond what Combine-MS achieves alone.
#[test]
fn ln7_combined_all_footprint_reduction_at_least_forty_percent() {
    let shape = ln_shape(7);
    let base = footprint(&shape, &OptEffects::baseline());
    let combined_ms = footprint(&shape, &effects_for(TrainingStrategy::CombinedMs));
    let all = footprint(&shape, &effects_for(TrainingStrategy::CombinedAll));
    let reduction = 1.0 - all.total() as f64 / base.total() as f64;
    assert!(
        reduction >= 0.40,
        "LN7 Combine-All footprint reduction {reduction:.4} below the 40 % gate"
    );
    assert!(
        all.total() < combined_ms.total(),
        "MS3 adds nothing on top of Combine-MS at LN7"
    );
}

/// Recompute is not free: MS3 must show *more* weight traffic than
/// baseline (the replayed FW weight stream) while still reducing total
/// traffic — the paper-faithful compute-for-memory trade.
#[test]
fn ms3_trades_weight_traffic_for_footprint() {
    let shape = ln_shape(7);
    let base = traffic(&shape, &OptEffects::baseline());
    let ms3 = traffic(&shape, &effects_for(TrainingStrategy::Ms3));
    assert!(
        ms3.weights > base.weights,
        "recompute has no weight-traffic cost?"
    );
    assert!(ms3.total() < base.total());
}

/// Writes the strategy × LN-shape footprint matrix to `results/` and
/// sanity-checks its shape. Regenerated on every test run, so the
/// committed artifact cannot drift from the model.
#[test]
fn strategy_matrix_artifact_is_current() {
    const GIB: f64 = (1u64 << 30) as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "MS3 strategy matrix — peak footprint per training iteration (GiB)\n\
         p1_density={P1_DENSITY}, skip_fraction={SKIP_FRACTION}, \
         MS3: k=4, bf16 storage (StrategyParams defaults)\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "strategy", "LN5", "LN6", "LN7", "LN8", "LN7 red."
    );
    let baseline_ln7 = footprint(&ln_shape(7), &OptEffects::baseline()).total();
    for strategy in TrainingStrategy::ALL_WITH_MS3 {
        let eff = effects_for(strategy);
        let totals: Vec<FootprintBreakdown> =
            (5..=8).map(|l| footprint(&ln_shape(l), &eff)).collect();
        let ln7 = totals[2].total();
        let _ = writeln!(
            out,
            "{:<12} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>9.1}%",
            strategy.to_string(),
            totals[0].total() as f64 / GIB,
            totals[1].total() as f64 / GIB,
            totals[2].total() as f64 / GIB,
            totals[3].total() as f64 / GIB,
            (1.0 - ln7 as f64 / baseline_ln7 as f64) * 100.0,
        );
    }
    assert_eq!(
        out.lines().count(),
        4 + TrainingStrategy::ALL_WITH_MS3.len()
    );

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("results/ms3_strategy_matrix.txt");
    std::fs::write(&path, &out).expect("write results/ms3_strategy_matrix.txt");
}
