//! Workspace gate: `cargo test` fails if the eta-lint static-analysis
//! pass reports any unsuppressed finding, if `lint.toml` fails to
//! parse (unknown rule, missing reason, entry pointing at a file that
//! no longer exists), or if an allowlist entry has gone stale and
//! matches nothing.
//!
//! This is the same pass CI runs via `cargo run -p eta-lint`; keeping
//! it under `cargo test` means the determinism/numeric-safety contract
//! is enforced even in environments that never run the CI workflow.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = eta_lint::lint_workspace(root)
        .unwrap_or_else(|e| panic!("eta-lint configuration error: {e}"));
    assert!(
        !report.files.is_empty(),
        "lint walked no files; workspace root detection is broken"
    );
    assert!(
        report.is_clean(),
        "eta-lint found unsuppressed violations; fix them or add a \
         justified entry to lint.toml:\n{}",
        report.render_text()
    );
    assert!(
        report.unused_allowlist.is_empty(),
        "stale lint.toml entries match no finding; delete them:\n{:#?}",
        report.unused_allowlist
    );
}
