//! Trace-export contract (PR acceptance): a traced training run must
//! produce Chrome trace-event JSON that a strict validator accepts
//! (B/E pairs nest LIFO per thread, timestamps are monotonic, every
//! nested path resolves to its parent), a non-empty collapsed-stack
//! export, and — the determinism half — a span *structure* (multiset
//! of hierarchical paths) that is bit-identical across worker thread
//! counts. Threads are a latency knob, never a structure knob: shard
//! spans are rooted per shard, not per OS thread.

use std::collections::BTreeMap;

use eta_lstm::core::parallel::Parallelism;
use eta_lstm::core::{LstmConfig, Trainer, TrainingStrategy};
use eta_lstm::workloads::SyntheticTask;
use eta_prof::validate_chrome_trace;
use eta_telemetry::{keys, RunManifest, Telemetry};

fn config() -> LstmConfig {
    LstmConfig::builder()
        .input_size(12)
        .hidden_size(16)
        .layers(2)
        .seq_len(12)
        .batch_size(8)
        .output_size(4)
        .build()
        .expect("valid config")
}

fn task() -> SyntheticTask {
    SyntheticTask::classification(12, 4, 12, 3).with_batch_size(8)
}

struct TracedRun {
    structure: BTreeMap<String, u64>,
    chrome_json: String,
    folded: String,
    spans_total: u64,
    kernel_flops: u64,
}

fn run_traced(threads: usize) -> TracedRun {
    let dir = std::env::temp_dir().join(format!("eta_trace_roundtrip_t{threads}"));
    std::fs::remove_dir_all(&dir).ok();
    let telemetry = Telemetry::new(RunManifest::capture(
        "trace_roundtrip",
        eta_telemetry::config_hash(&42u64),
        42,
    ));
    let session = eta_prof::TraceSession::start(telemetry.clone(), &dir, "trace_roundtrip");
    let mut trainer = Trainer::new(config(), TrainingStrategy::Baseline, 42)
        .expect("trainer")
        .with_telemetry(telemetry.clone())
        .with_parallelism(Parallelism::with_threads(threads));
    trainer.run(&task(), 2).expect("training");
    let structure = session.tracer().structure();
    let trace_path = session.finish().expect("trace export");
    let chrome_json = std::fs::read_to_string(&trace_path).expect("trace file");
    let folded =
        std::fs::read_to_string(dir.join("trace_roundtrip.folded.txt")).expect("folded file");
    let snap = telemetry.snapshot();
    let out = TracedRun {
        structure,
        chrome_json,
        folded,
        spans_total: snap.counter_total(keys::TRACE_SPANS_TOTAL),
        kernel_flops: snap.counter_total(keys::KERNEL_GEMM_FLOPS_TOTAL),
    };
    std::fs::remove_dir_all(&dir).ok();
    out
}

#[test]
fn chrome_trace_round_trips_and_spans_nest() {
    let run = run_traced(2);
    // Perfetto-loadable: the strict validator parses the JSON, replays
    // every thread's B/E stream, and rejects exit-before-enter,
    // crossed nesting, unparented nested paths, and dangling opens.
    validate_chrome_trace(&run.chrome_json).expect("valid Chrome trace");
    assert!(!run.folded.is_empty(), "collapsed-stack export is empty");
    assert!(run.spans_total > 0, "no spans recorded");
    assert!(run.kernel_flops > 0, "kernel FLOP accounting missing");
}

#[test]
fn trace_structure_covers_the_training_hierarchy() {
    let run = run_traced(2);
    for path in [
        "epoch",
        "epoch/batch",
        "epoch/batch/pack_panels",
        "epoch/batch/step",
        "epoch/batch/apply",
        "shard",
        "shard/layer_fw",
        "shard/layer_fw/fw_cell",
        "shard/layer_fw/fw_cell/gemm",
        "shard/layer_bp",
        "shard/layer_bp/bp_cell",
    ] {
        assert!(
            run.structure.contains_key(path),
            "span path {path:?} missing from trace structure: {:?}",
            run.structure.keys().collect::<Vec<_>>()
        );
    }
    // The flamegraph folds the same hierarchy by name.
    assert!(run.folded.contains("epoch;batch;step"), "{}", run.folded);
}

#[test]
fn trace_structure_is_identical_across_thread_counts() {
    let reference = run_traced(1);
    for threads in [2, 4] {
        let run = run_traced(threads);
        assert_eq!(
            reference.structure, run.structure,
            "span structure diverged between 1 and {threads} threads"
        );
    }
}
